"""Smoke tests: every example script runs and tells its story.

Examples are user-facing documentation; a broken example is a broken
promise.  Each test runs the script in a subprocess (exactly as a user
would) and checks for its key conclusion in the output.
"""

import os
import subprocess
import sys


_EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "examples",
)


def _run(script: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "diagnosis: reducible" in out
        assert "improved the quality" in out

    def test_noisy_data_rescue(self):
        out = _run("noisy_data_rescue.py")
        assert "planted noise" in out
        assert "coherence ordering peaks" in out

    def test_index_acceleration(self):
        out = _run("index_acceleration.py")
        assert "PRUNED" in out
        assert "kd-tree" in out

    def test_scaling_matters(self):
        out = _run("scaling_matters.py")
        assert "correlation PCA" in out
        assert "studentized" in out

    def test_dynamic_stream(self):
        out = _run("dynamic_stream.py")
        assert "refits=" in out
        assert "drift-refit basis" in out

    def test_text_concepts(self):
        out = _run("text_concepts.py")
        assert "semantic concept" in out
        assert "topic accuracy" in out

    def test_bring_your_own_data(self):
        out = _run("bring_your_own_data.py")
        assert "automatic cut-off kept" in out
        assert "reloaded reducer answers queries" in out

    def test_every_example_has_a_test(self):
        scripts = {
            name
            for name in os.listdir(_EXAMPLES_DIR)
            if name.endswith(".py")
        }
        tested = {
            "quickstart.py",
            "noisy_data_rescue.py",
            "index_acceleration.py",
            "scaling_matters.py",
            "dynamic_stream.py",
            "text_concepts.py",
            "bring_your_own_data.py",
        }
        assert scripts == tested, (
            "examples/ and this test file drifted apart; add a smoke test "
            f"for: {scripts - tested}"
        )
