"""API hygiene: documentation and error-behaviour contracts.

Two cross-cutting guarantees a downstream user relies on:

* every public module, class, function, and method carries a docstring;
* bad input (NaN, wrong shape, empty) raises ``ValueError`` with a
  readable message — never a silent wrong answer, never a numpy
  broadcasting traceback from deep inside.
"""

import importlib
import inspect
import pkgutil

import numpy as np
import pytest

import repro


def _public_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "._" not in info.name:
            names.append(info.name)
    return names


class TestDocstrings:
    @pytest.mark.parametrize("module_name", _public_modules())
    def test_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    @pytest.mark.parametrize("module_name", _public_modules())
    def test_public_items_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name, item in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(item) or inspect.isfunction(item)):
                continue
            if getattr(item, "__module__", None) != module_name:
                continue  # re-exports are documented at their source
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(item):
                for method_name, method in vars(item).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not (method.__doc__ and method.__doc__.strip()):
                        undocumented.append(f"{name}.{method_name}")
        assert not undocumented, f"{module_name}: {undocumented}"


class TestErrorContracts:
    """Bad input raises ValueError, uniformly."""

    def test_nan_features_rejected_everywhere(self):
        bad = np.array([[1.0, np.nan], [0.0, 1.0]])
        labels = np.array([0, 1])
        from repro import (
            CoherenceReducer,
            diagnose_reducibility,
            feature_stripping_accuracy,
            fit_pca,
        )
        from repro.search import BruteForceIndex, KdTreeIndex

        for action in (
            lambda: fit_pca(bad),
            lambda: CoherenceReducer(n_components=1).fit(bad),
            lambda: diagnose_reducibility(bad),
            lambda: feature_stripping_accuracy(bad, labels),
            lambda: BruteForceIndex(bad),
            lambda: KdTreeIndex(bad),
        ):
            with pytest.raises(ValueError):
                action()

    def test_shape_mismatches_rejected_everywhere(self):
        good = np.random.default_rng(0).normal(size=(10, 3))
        from repro import CoherenceReducer
        from repro.search import BruteForceIndex

        reducer = CoherenceReducer(n_components=2).fit(good)
        with pytest.raises(ValueError):
            reducer.transform(np.zeros((2, 4)))
        index = BruteForceIndex(good)
        with pytest.raises(ValueError):
            index.query(np.zeros(4), k=1)

    def test_empty_inputs_rejected_everywhere(self):
        from repro import fit_pca
        from repro.search import BruteForceIndex
        from repro.text import CountVectorizer

        with pytest.raises(ValueError):
            fit_pca(np.empty((0, 3)))
        with pytest.raises(ValueError):
            BruteForceIndex(np.empty((0, 3)))
        with pytest.raises(ValueError):
            CountVectorizer().fit([[]])

    def test_error_messages_name_the_problem(self):
        from repro import fit_pca

        with pytest.raises(ValueError, match="finite"):
            fit_pca(np.array([[np.inf, 0.0], [1.0, 2.0]]))
        with pytest.raises(ValueError, match="2-d"):
            fit_pca(np.ones(5))
