"""Tests for streaming moments."""

import numpy as np
import pytest

from repro.dynamic.moments import IncrementalMoments
from repro.linalg.covariance import covariance_matrix


class TestIncrementalMoments:
    def test_single_batch_matches_batch_computation(self, rng):
        data = rng.normal(size=(50, 4))
        moments = IncrementalMoments(4).update(data)
        assert moments.count == 50
        assert np.allclose(moments.mean, data.mean(axis=0))
        assert np.allclose(moments.covariance(), covariance_matrix(data), atol=1e-10)

    def test_row_by_row_matches_batch(self, rng):
        data = rng.normal(size=(30, 3))
        moments = IncrementalMoments(3)
        for row in data:
            moments.update(row)
        assert np.allclose(moments.covariance(), covariance_matrix(data), atol=1e-9)

    def test_chunked_matches_batch(self, rng):
        data = rng.normal(size=(45, 5))
        moments = IncrementalMoments(5)
        for start in range(0, 45, 7):
            moments.update(data[start : start + 7])
        assert np.allclose(moments.mean, data.mean(axis=0), atol=1e-12)
        assert np.allclose(moments.covariance(), covariance_matrix(data), atol=1e-9)

    def test_ddof_one(self, rng):
        data = rng.normal(size=(20, 2))
        moments = IncrementalMoments(2).update(data)
        assert np.allclose(
            moments.covariance(ddof=1), np.cov(data, rowvar=False), atol=1e-10
        )

    def test_variances(self, rng):
        data = rng.normal(size=(40, 3)) * np.array([1.0, 2.0, 3.0])
        moments = IncrementalMoments(3).update(data)
        assert np.allclose(moments.variances(), data.var(axis=0), atol=1e-10)

    def test_merge_matches_combined(self, rng):
        first = rng.normal(size=(25, 4))
        second = rng.normal(loc=3.0, size=(35, 4))
        a = IncrementalMoments(4).update(first)
        b = IncrementalMoments(4).update(second)
        a.merge(b)
        combined = np.vstack([first, second])
        assert a.count == 60
        assert np.allclose(a.covariance(), covariance_matrix(combined), atol=1e-9)

    def test_merge_into_empty(self, rng):
        data = rng.normal(size=(10, 2))
        a = IncrementalMoments(2)
        b = IncrementalMoments(2).update(data)
        a.merge(b)
        assert a.count == 10
        assert np.allclose(a.mean, data.mean(axis=0))

    def test_merge_dimension_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            IncrementalMoments(2).merge(IncrementalMoments(3))

    def test_covariance_needs_rows(self):
        moments = IncrementalMoments(2)
        with pytest.raises(ValueError):
            moments.covariance()
        moments.update(np.zeros(2))
        with pytest.raises(ValueError):
            moments.covariance(ddof=1)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError, match="columns"):
            IncrementalMoments(3).update(np.zeros((2, 4)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            IncrementalMoments(2).update([np.nan, 0.0])

    def test_empty_batch_is_noop(self, rng):
        moments = IncrementalMoments(2).update(rng.normal(size=(5, 2)))
        before = moments.covariance().copy()
        moments.update(np.empty((0, 2)))
        assert moments.count == 5
        assert np.array_equal(moments.covariance(), before)

    def test_numerical_stability_large_offset(self, rng):
        # Welford-style updates must survive a huge common offset.
        data = rng.normal(size=(100, 2)) + 1e8
        moments = IncrementalMoments(2)
        for start in range(0, 100, 10):
            moments.update(data[start : start + 10])
        assert np.allclose(
            moments.covariance(), covariance_matrix(data), atol=1e-4
        )


class TestDowndate:
    def test_inverse_of_update(self, rng):
        data = rng.normal(size=(80, 3))
        moments = IncrementalMoments(3).update(data)
        moments.downdate(data[50:])
        assert moments.count == 50
        assert np.allclose(moments.mean, data[:50].mean(axis=0), atol=1e-10)
        assert np.allclose(
            moments.covariance(), covariance_matrix(data[:50]), atol=1e-9
        )

    def test_remove_everything_resets(self, rng):
        data = rng.normal(size=(10, 2))
        moments = IncrementalMoments(2).update(data)
        moments.downdate(data)
        assert moments.count == 0
        assert np.allclose(moments.mean, 0.0)

    def test_single_row_downdate(self, rng):
        data = rng.normal(size=(20, 2))
        moments = IncrementalMoments(2).update(data)
        moments.downdate(data[7])
        rest = np.delete(data, 7, axis=0)
        assert np.allclose(moments.covariance(), covariance_matrix(rest), atol=1e-10)

    def test_update_downdate_roundtrip_many_times(self, rng):
        base = rng.normal(size=(40, 3))
        extra = rng.normal(size=(15, 3))
        moments = IncrementalMoments(3).update(base)
        for _ in range(10):
            moments.update(extra)
            moments.downdate(extra)
        assert moments.count == 40
        assert np.allclose(
            moments.covariance(), covariance_matrix(base), atol=1e-7
        )

    def test_rejects_removing_too_many(self, rng):
        moments = IncrementalMoments(2).update(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError, match="cannot remove"):
            moments.downdate(rng.normal(size=(6, 2)))

    def test_empty_downdate_is_noop(self, rng):
        data = rng.normal(size=(10, 2))
        moments = IncrementalMoments(2).update(data)
        before = moments.covariance().copy()
        moments.downdate(np.empty((0, 2)))
        assert np.array_equal(moments.covariance(), before)

    def test_rejects_bad_shapes(self, rng):
        moments = IncrementalMoments(3).update(rng.normal(size=(5, 3)))
        with pytest.raises(ValueError, match="columns"):
            moments.downdate(np.zeros((2, 4)))
        with pytest.raises(ValueError, match="finite"):
            moments.downdate([np.nan, 0.0, 1.0])
