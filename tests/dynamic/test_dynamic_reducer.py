"""Tests for the end-to-end dynamic reducer."""

import numpy as np
import pytest

from repro.datasets.synthetic import latent_concept_dataset
from repro.dynamic.reducer import DynamicReducer


def _stream(seed, n, shift=0.0):
    data = latent_concept_dataset(
        n, 16, 3, noise_std=0.8, seed=seed
    ).features.copy()
    if shift:
        data[:, :4] += shift
    return data


class TestDynamicReducer:
    def test_first_basis_after_enough_rows(self):
        reducer = DynamicReducer(n_dims=16, n_components=3)
        assert reducer.components_ is None
        reducer.insert(_stream(0, 50))
        assert reducer.components_ is not None
        assert reducer.refit_count == 1

    def test_transform_shape(self):
        reducer = DynamicReducer(n_dims=16, n_components=3)
        reducer.insert(_stream(0, 60))
        out = reducer.transform(_stream(1, 5))
        assert out.shape == (5, 3)
        single = reducer.transform(_stream(1, 5)[0])
        assert single.shape == (3,)

    def test_transform_before_any_basis_raises(self):
        reducer = DynamicReducer(n_dims=4, n_components=2)
        with pytest.raises(RuntimeError, match="no basis"):
            reducer.transform(np.zeros(4))

    def test_stationary_stream_does_not_refit(self):
        reducer = DynamicReducer(n_dims=16, n_components=3, drift_threshold=0.8)
        data = _stream(0, 400)
        for start in range(0, 400, 50):
            reducer.insert(data[start : start + 50])
        # One initial fit; a stationary stream never triggers another.
        assert reducer.refit_count == 1
        assert reducer.drift_level() > 0.9

    def test_distribution_shift_triggers_refit(self):
        reducer = DynamicReducer(n_dims=16, n_components=3, drift_threshold=0.9)
        reducer.insert(_stream(0, 100))
        fits_before = reducer.refit_count
        # A radically different generator: new concepts, big offset.
        rng = np.random.default_rng(9)
        drifted = np.zeros((400, 16))
        drifted[:, 12:] = rng.normal(size=(400, 4)) * 20.0
        for start in range(0, 400, 50):
            reducer.insert(drifted[start : start + 50])
        assert reducer.refit_count > fits_before

    def test_eigenvalue_ordering_variant(self):
        reducer = DynamicReducer(n_dims=16, n_components=3, ordering="eigenvalue")
        reducer.insert(_stream(0, 60))
        assert list(reducer.selected_) == [0, 1, 2]

    def test_coherence_ordering_skips_planted_noise(self):
        # Stream concept data with one huge-variance uncorrelated column.
        rng = np.random.default_rng(3)
        data = _stream(3, 300)
        data[:, 7] = rng.uniform(-60, 60, size=300)
        reducer = DynamicReducer(
            n_dims=16, n_components=3, ordering="coherence", reservoir_size=300
        )
        reducer.insert(data)
        # Component 0 (the noise column's eigenvector) must not be kept.
        assert 0 not in set(reducer.selected_.tolist())

    def test_reservoir_respects_cap(self):
        reducer = DynamicReducer(n_dims=16, n_components=2, reservoir_size=64)
        reducer.insert(_stream(0, 300))
        assert reducer._reservoir.shape == (64, 16)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DynamicReducer(n_dims=4, n_components=5)
        with pytest.raises(ValueError):
            DynamicReducer(n_dims=4, n_components=2, ordering="best")
        with pytest.raises(ValueError):
            DynamicReducer(n_dims=4, n_components=2, reservoir_size=1)

    def test_drift_level_requires_basis(self):
        reducer = DynamicReducer(n_dims=4, n_components=2)
        with pytest.raises(RuntimeError, match="no basis"):
            reducer.drift_level()
