"""Tests for the dynamic similarity pipeline."""

import numpy as np
import pytest

from repro.datasets.synthetic import latent_concept_dataset
from repro.dynamic.pipeline import DynamicSimilarityPipeline


def _segment(seed, n=200):
    return latent_concept_dataset(n, 16, 3, noise_std=0.8, seed=seed)


class TestDynamicSimilarityPipeline:
    def test_self_query_after_streaming(self):
        data = _segment(0)
        pipeline = DynamicSimilarityPipeline(n_dims=16, n_components=3)
        pipeline.insert(data.features)
        result = pipeline.query(data.features[17], k=1)
        assert result.neighbors[0].index == 17
        assert result.neighbors[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_handles_are_stable_across_refits(self):
        first = _segment(0)
        pipeline = DynamicSimilarityPipeline(
            n_dims=16, n_components=3, drift_threshold=0.9
        )
        handles = pipeline.insert(first.features)
        assert handles == list(range(first.n_samples))

        # Force a refit with a rotated second segment.
        second = _segment(99)
        permutation = np.random.default_rng(0).permutation(16)
        pipeline.insert(second.features[:, permutation])
        assert pipeline.refit_count > 1
        # Old handles still resolve to the same rows after the rebuild.
        result = pipeline.query(first.features[5], k=1)
        assert result.neighbors[0].index == 5

    def test_delete_removes_from_results(self):
        data = _segment(1)
        pipeline = DynamicSimilarityPipeline(n_dims=16, n_components=3)
        pipeline.insert(data.features)
        pipeline.delete(30)
        result = pipeline.query(data.features[30], k=3)
        assert 30 not in result.indices.tolist()
        assert pipeline.n_live == data.n_samples - 1

    def test_delete_unknown_handle_raises(self):
        pipeline = DynamicSimilarityPipeline(n_dims=16, n_components=3)
        pipeline.insert(_segment(0).features[:20])
        with pytest.raises(KeyError):
            pipeline.delete(999)
        pipeline.delete(3)
        with pytest.raises(KeyError):
            pipeline.delete(3)

    def test_query_before_enough_data_raises(self):
        pipeline = DynamicSimilarityPipeline(n_dims=16, n_components=3)
        with pytest.raises(RuntimeError, match="insert more rows"):
            pipeline.query(np.zeros(16), k=1)

    def test_query_matches_flat_recomputation(self):
        # The pipeline's answer equals reducing everything from scratch
        # with the same frozen basis and brute-forcing.
        data = _segment(2)
        pipeline = DynamicSimilarityPipeline(n_dims=16, n_components=3)
        pipeline.insert(data.features)

        reduced = pipeline._reducer.transform(data.features)
        query = pipeline._reducer.transform(data.features[77])
        squared = np.sum(np.square(reduced - query), axis=1)
        expected = np.argsort(squared, kind="stable")[:4].tolist()
        actual = pipeline.query(data.features[77], k=4).indices.tolist()
        assert actual == expected

    def test_insert_rejects_wrong_width(self):
        pipeline = DynamicSimilarityPipeline(n_dims=16, n_components=3)
        with pytest.raises(ValueError, match="columns"):
            pipeline.insert(np.zeros((3, 5)))

    def test_k_clamped_to_live_count(self):
        data = _segment(3, n=30)
        pipeline = DynamicSimilarityPipeline(n_dims=16, n_components=3)
        pipeline.insert(data.features[:10])
        result = pipeline.query(data.features[0], k=10)
        assert len(result.neighbors) == 10
