"""Tests for the updatable PCA."""

import numpy as np
import pytest

from repro.dynamic.incremental_pca import IncrementalPCA
from repro.linalg.pca import fit_pca


class TestIncrementalPCA:
    def test_matches_batch_pca_after_streaming(self, rng):
        data = rng.normal(size=(80, 5)) @ np.diag([3, 2, 1, 0.5, 0.2])
        incremental = IncrementalPCA(5)
        for start in range(0, 80, 13):
            incremental.partial_fit(data[start : start + 13])
        batch = fit_pca(data)
        assert np.allclose(
            incremental.decomposition.eigenvalues,
            batch.decomposition.eigenvalues,
            atol=1e-9,
        )

    def test_transform_matches_batch(self, rng):
        data = rng.normal(size=(60, 4))
        incremental = IncrementalPCA(4).partial_fit(data)
        batch = fit_pca(data)
        ours = incremental.transform(data)
        theirs = batch.transform(data)
        # Signs may differ per component; compare absolute values.
        assert np.allclose(np.abs(ours), np.abs(theirs), atol=1e-9)

    def test_scaled_mode_matches_correlation_pca(self, rng):
        data = rng.normal(size=(70, 4)) * np.array([1, 10, 100, 1000])
        incremental = IncrementalPCA(4, scale=True).partial_fit(data)
        batch = fit_pca(data, scale=True)
        assert np.allclose(
            incremental.decomposition.eigenvalues,
            batch.decomposition.eigenvalues,
            atol=1e-9,
        )

    def test_scaled_mode_keeps_constant_dimensions(self, rng):
        data = rng.normal(size=(30, 3))
        data[:, 1] = 7.0
        incremental = IncrementalPCA(3, scale=True).partial_fit(data)
        # The working matrix stays 3x3 (constant dim = zero row/column).
        assert incremental.decomposition.dimensionality == 3
        projected = incremental.transform(data)
        assert projected.shape == (30, 3)

    def test_lazy_refresh(self, rng):
        incremental = IncrementalPCA(3).partial_fit(rng.normal(size=(20, 3)))
        first = incremental.decomposition
        # No new data: the same object is returned (no recomputation).
        assert incremental.decomposition is first
        incremental.partial_fit(rng.normal(size=(5, 3)))
        assert incremental.decomposition is not first

    def test_needs_two_rows(self, rng):
        incremental = IncrementalPCA(2).partial_fit(np.zeros(2))
        with pytest.raises(RuntimeError, match="two rows"):
            _ = incremental.decomposition

    def test_transform_component_subset(self, rng):
        data = rng.normal(size=(40, 5))
        incremental = IncrementalPCA(5).partial_fit(data)
        subset = incremental.transform(data, component_indices=[0, 2])
        assert subset.shape == (40, 2)

    def test_transform_rejects_wrong_width(self, rng):
        incremental = IncrementalPCA(3).partial_fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="columns"):
            incremental.transform(np.zeros((2, 4)))

    def test_mean_and_covariance_accessors(self, rng):
        data = rng.normal(loc=2.0, size=(25, 3))
        incremental = IncrementalPCA(3).partial_fit(data)
        assert np.allclose(incremental.mean, data.mean(axis=0))
        assert incremental.covariance().shape == (3, 3)
