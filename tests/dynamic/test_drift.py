"""Tests for the drift monitor."""

import numpy as np
import pytest

from repro.dynamic.drift import DriftMonitor
from repro.linalg.covariance import covariance_matrix


def _covariance_along(direction: np.ndarray, scale: float, d: int) -> np.ndarray:
    """Covariance concentrated along one direction plus faint isotropy."""
    unit = direction / np.linalg.norm(direction)
    return scale * np.outer(unit, unit) + 0.01 * np.eye(d)


class TestDriftMonitor:
    def test_no_drift_when_distribution_unchanged(self, rng):
        data = rng.normal(size=(100, 4)) @ np.diag([3, 1, 0.5, 0.1])
        covariance = covariance_matrix(data)
        basis = np.linalg.eigh(covariance)[1][:, -2:]  # top-2 subspace
        monitor = DriftMonitor(basis, covariance)
        assert monitor.relative_capture(covariance) == pytest.approx(1.0)
        assert not monitor.should_refit(covariance)

    def test_detects_rotated_distribution(self):
        d = 4
        original = _covariance_along(np.eye(d)[0], 10.0, d)
        basis = np.eye(d)[:, :1]
        monitor = DriftMonitor(basis, original, threshold=0.9)
        rotated = _covariance_along(np.eye(d)[1], 10.0, d)
        assert monitor.should_refit(rotated)
        assert monitor.relative_capture(rotated) < 0.2

    def test_partial_drift_below_threshold_tolerated(self):
        d = 4
        original = _covariance_along(np.eye(d)[0], 10.0, d)
        basis = np.eye(d)[:, :1]
        monitor = DriftMonitor(basis, original, threshold=0.5)
        # Slightly rotated: mostly still captured.
        direction = np.array([1.0, 0.3, 0.0, 0.0])
        drifted = _covariance_along(direction, 10.0, d)
        assert not monitor.should_refit(drifted)

    def test_reference_ratio_reported(self, rng):
        data = rng.normal(size=(60, 3))
        covariance = covariance_matrix(data)
        basis = np.linalg.eigh(covariance)[1][:, -1:]
        monitor = DriftMonitor(basis, covariance)
        assert 0.0 < monitor.reference_ratio <= 1.0

    def test_rejects_dead_basis(self):
        covariance = np.diag([1.0, 1.0, 0.0])
        basis = np.array([[0.0], [0.0], [1.0]])  # spans only the dead dim
        with pytest.raises(ValueError, match="no energy"):
            DriftMonitor(basis, covariance)

    def test_rejects_bad_threshold(self, rng):
        covariance = covariance_matrix(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError, match="threshold"):
            DriftMonitor(np.eye(2)[:, :1], covariance, threshold=0.0)

    def test_rejects_shape_mismatch(self, rng):
        covariance = covariance_matrix(rng.normal(size=(10, 3)))
        monitor = DriftMonitor(np.eye(3)[:, :1], covariance)
        with pytest.raises(ValueError, match="shape"):
            monitor.captured_energy_ratio(np.eye(2))

    def test_zero_covariance_captures_nothing(self, rng):
        covariance = covariance_matrix(rng.normal(size=(10, 2)))
        monitor = DriftMonitor(np.eye(2)[:, :1], covariance)
        assert monitor.captured_energy_ratio(np.zeros((2, 2))) == 0.0
