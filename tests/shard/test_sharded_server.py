"""ShardedIndexServer: identity, routing, failure policy, admission."""

import threading

import numpy as np
import pytest

from repro.search import BruteForceIndex, KdTreeIndex
from repro.serve import (
    BatchPolicy,
    DeadlineExceeded,
    ServerClosedError,
    ServerOverloaded,
    ShardError,
)
from repro.shard import ShardedIndexServer, build_shards

# Holds submitted requests in the member batchers indefinitely, so
# admission/deadline/cancellation tests control exactly when work runs.
_HOLD = BatchPolicy(max_batch=10_000, max_wait_ms=3_600_000.0)
_FAST = BatchPolicy(max_batch=8, max_wait_ms=1.0)


@pytest.fixture(scope="module")
def manifest(corpus, tmp_path_factory):
    out = tmp_path_factory.mktemp("shards")
    return build_shards(corpus, str(out), 3, kind="bruteforce")


class TestIdentity:
    def test_submit_matches_unsharded(self, corpus, manifest):
        reference = BruteForceIndex(corpus)
        generator = np.random.default_rng(5)
        queries = list(generator.normal(size=(12, corpus.shape[1])))
        queries += [corpus[2], corpus[11]]  # duplicated rows: exact ties
        with ShardedIndexServer(manifest, n_workers=0, policy=_FAST) as server:
            assert server.n_points == corpus.shape[0]
            assert server.n_shards == 3
            assert server.kind == "bruteforce"
            futures = [server.submit(q, k=5) for q in queries]
            for query, future in zip(queries, futures):
                expected = reference.query(query, k=5)
                got = future.result(timeout=30)
                assert got.indices.tolist() == expected.indices.tolist()
                assert got.distances.tolist() == expected.distances.tolist()
                assert got.stats == expected.stats
            report = server.stats()
        assert report.n_requests == len(queries)
        # Member micro-batches and scans are folded into the report.
        assert report.n_batches >= server.n_shards
        assert report.query_stats.points_scanned == (
            len(queries) * corpus.shape[0]
        )

    def test_query_batch_matches_unsharded(self, corpus, tmp_path):
        reference = KdTreeIndex(corpus)
        man = build_shards(
            corpus, str(tmp_path), 4, kind="kdtree", method="projected"
        )
        queries = np.vstack([corpus[2], corpus[50] * 1.01, corpus[7] - 0.2])
        with ShardedIndexServer(man, n_workers=0) as server:
            merged = server.query_batch(queries, k=6)
            expected = reference.query_batch(queries, k=6)
            assert merged.indices.tolist() == expected.indices.tolist()
            assert merged.distances.tolist() == expected.distances.tolist()

    def test_k_clamped_to_shard_size(self, corpus, tmp_path):
        # k may exceed every shard's local size; the per-shard fan-out
        # must clamp it while the merged answer still honors global k.
        man = build_shards(corpus, str(tmp_path), 16, kind="bruteforce")
        reference = BruteForceIndex(corpus)
        k = corpus.shape[0] // 8  # > ceil(n/16), the largest shard
        with ShardedIndexServer(man, n_workers=0, policy=_FAST) as server:
            got = server.query(corpus[3], k=k)
        expected = reference.query(corpus[3], k=k)
        assert got.indices.tolist() == expected.indices.tolist()


class TestReplicaRouting:
    def test_both_replicas_serve_traffic(self, corpus, manifest):
        with ShardedIndexServer(
            manifest, n_workers=0, replicas=2, policy=_FAST
        ) as server:
            generator = np.random.default_rng(9)
            for query in generator.normal(size=(16, corpus.shape[1])):
                server.query(query, k=2)
            reports = server.shard_reports()
        for shard_reports in reports:
            assert len(shard_reports) == 2
            # Least-loaded with a rotating tie-break spreads sequential
            # traffic across replicas instead of pinning one.
            assert all(r.n_requests >= 1 for r in shard_reports)

    def test_least_loaded_prefers_idle_replica(self, corpus, manifest):
        with ShardedIndexServer(
            manifest, n_workers=0, replicas=2, policy=_HOLD
        ) as server:
            member = server._shards[0]
            # Pin load on one replica; the next pick must take the other.
            member.loads[0] = 5
            choice, _ = server._pick_replica(member)
            assert choice == 1
            member.loads[0] = 0
            member.loads[1] -= 1


class TestPartialFailurePolicy:
    def test_dead_shard_fails_typed_never_partial(self, corpus, manifest):
        with ShardedIndexServer(manifest, n_workers=0, policy=_FAST) as server:
            # Kill shard 1's only replica out from under the coordinator.
            server._shards[1].replicas[0].close()
            future = server.submit(corpus[0], k=4)
            with pytest.raises(ShardError) as excinfo:
                future.result(timeout=30)
            assert "shard 1" in str(excinfo.value)
            assert isinstance(excinfo.value.__cause__, ServerClosedError)
            report = server.stats()
        assert report.n_failed == 1
        assert report.n_requests == 0

    def test_dead_shard_fails_query_batch(self, corpus, manifest):
        with ShardedIndexServer(manifest, n_workers=0) as server:
            server._shards[2].replicas[0].close()
            with pytest.raises(ShardError, match="shard 2"):
                server.query_batch(corpus[:3], k=2)

    def test_replica_survives_dead_peer(self, corpus, manifest):
        # With R=2, killing one replica degrades capacity, not answers:
        # the live replica keeps the shard serving bit-identically.
        reference = BruteForceIndex(corpus)
        with ShardedIndexServer(
            manifest, n_workers=0, replicas=2, policy=_FAST
        ) as server:
            dead = server._shards[0].replicas[0]
            dead.close()
            # Route every request away from the closed replica.
            server._shards[0].loads[0] = 10_000
            for query in (corpus[4], corpus[2]):
                got = server.query(query, k=3)
                expected = reference.query(query, k=3)
                assert got.indices.tolist() == expected.indices.tolist()


class TestDeadlines:
    def test_deadline_releases_future(self, corpus, manifest):
        with ShardedIndexServer(manifest, n_workers=0, policy=_HOLD) as server:
            future = server.submit(corpus[0], k=2, deadline_ms=30.0)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30)
            report = server.stats()
            assert report.n_deadline_exceeded == 1
        assert server.stats().n_deadline_exceeded == 1

    def test_default_deadline_applies(self, corpus, manifest):
        with ShardedIndexServer(
            manifest, n_workers=0, policy=_HOLD, default_deadline_ms=25.0
        ) as server:
            future = server.submit(corpus[0], k=2)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30)

    def test_rejects_non_positive_deadline(self, corpus, manifest):
        with ShardedIndexServer(manifest, n_workers=0) as server:
            with pytest.raises(ValueError, match="deadline_ms"):
                server.submit(corpus[0], k=1, deadline_ms=0.0)


class TestCoordinatorAdmission:
    def test_reject_new_sheds_synchronously(self, corpus, manifest):
        with ShardedIndexServer(
            manifest, n_workers=0, policy=_HOLD, max_pending=2
        ) as server:
            held = [server.submit(corpus[i], k=1) for i in range(2)]
            with pytest.raises(ServerOverloaded):
                server.submit(corpus[5], k=1)
            report = server.stats()
            assert report.n_shed == 1
            assert server.n_pending == 2
            for future in held:
                assert not future.done()

    def test_drop_oldest_fails_oldest_outstanding(self, corpus, manifest):
        with ShardedIndexServer(
            manifest,
            n_workers=0,
            policy=_HOLD,
            max_pending=2,
            shed_policy="drop-oldest",
        ) as server:
            oldest = server.submit(corpus[0], k=1)
            second = server.submit(corpus[1], k=1)
            newest = server.submit(corpus[2], k=1)
            with pytest.raises(ServerOverloaded):
                oldest.result(timeout=5)
            assert not second.done()
            assert not newest.done()
            assert server.stats().n_shed == 1

    def test_rejects_bad_admission_config(self, manifest):
        with pytest.raises(ValueError, match="max_pending"):
            ShardedIndexServer(manifest, max_pending=0)
        with pytest.raises(ValueError, match="shed_policy"):
            ShardedIndexServer(manifest, shed_policy="random")
        with pytest.raises(ValueError, match="replicas"):
            ShardedIndexServer(manifest, replicas=0)


class TestLedger:
    def test_every_submission_accounted_once(self, corpus, manifest):
        # Mix outcomes: answered, cancelled, shed (drop-oldest), and
        # closed-server failures — the ledger must balance exactly.
        with ShardedIndexServer(
            manifest,
            n_workers=0,
            policy=_HOLD,
            max_pending=8,
            shed_policy="drop-oldest",
        ) as server:
            futures = [server.submit(corpus[i], k=1) for i in range(8)]
            assert futures[1].cancel()
            assert futures[2].cancel()
            # Cancelled futures leave the admission queue immediately, so
            # two more fit under the bound; the two after that overflow
            # it and shed the two oldest live requests.
            futures += [server.submit(corpus[i], k=1) for i in (8, 9, 10, 11)]
            server.close()
            report = server.stats()
        submitted = len(futures)
        accounted = (
            report.n_requests
            + report.n_failed
            + report.n_shed
            + report.n_deadline_exceeded
            + report.n_cancelled
        )
        assert accounted == submitted, report
        assert report.n_cancelled == 2
        assert report.n_shed == 2

    def test_reset_stats_clears_members_too(self, corpus, manifest):
        with ShardedIndexServer(manifest, n_workers=0, policy=_FAST) as server:
            server.query(corpus[0], k=1)
            assert server.stats().n_requests == 1
            server.reset_stats()
            report = server.stats()
            assert report.n_requests == 0
            assert report.n_batches == 0
            assert all(
                r.n_requests == 0
                for reports in server.shard_reports()
                for r in reports
            )


class TestLifecycle:
    def test_close_fails_outstanding_and_is_idempotent(self, corpus, manifest):
        server = ShardedIndexServer(manifest, n_workers=0, policy=_HOLD)
        future = server.submit(corpus[0], k=1)
        server.close()
        server.close()
        assert future.done()
        with pytest.raises(ServerClosedError):
            server.submit(corpus[0], k=1)
        with pytest.raises(ServerClosedError):
            server.query_batch(corpus[:2], k=1)

    def test_validation_matches_unsharded_surface(self, corpus, manifest):
        with ShardedIndexServer(manifest, n_workers=0) as server:
            with pytest.raises(ValueError, match="k must lie"):
                server.submit(corpus[0], k=0)
            with pytest.raises(ValueError, match="k must lie"):
                server.submit(corpus[0], k=corpus.shape[0] + 1)
            with pytest.raises(ValueError, match="1-d vector"):
                server.submit(corpus[:2], k=1)
            with pytest.raises(ValueError, match="finite"):
                server.submit(np.full(corpus.shape[1], np.nan), k=1)

    def test_concurrent_submitters(self, corpus, manifest):
        reference = BruteForceIndex(corpus)
        generator = np.random.default_rng(17)
        queries = generator.normal(size=(24, corpus.shape[1]))
        expected = [reference.query(q, k=3) for q in queries]
        results = [None] * len(queries)
        with ShardedIndexServer(manifest, n_workers=0, policy=_FAST) as server:

            def worker(offset):
                for i in range(offset, len(queries), 3):
                    results[i] = server.query(queries[i], k=3)

            threads = [
                threading.Thread(target=worker, args=(n,)) for n in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for got, want in zip(results, expected):
            assert got.indices.tolist() == want.indices.tolist()
            assert got.distances.tolist() == want.distances.tolist()
