"""Exact top-k merge: against the unsharded answer and edge cases."""

import numpy as np
import pytest

from repro.search import BruteForceIndex
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
)
from repro.shard import merge_batches, merge_results, partition_labels


def _split(corpus, n_shards, method="round-robin"):
    labels = partition_labels(corpus, n_shards, method=method)
    ids = [np.flatnonzero(labels == s) for s in range(n_shards)]
    indexes = [BruteForceIndex(corpus[i]) for i in ids]
    return indexes, ids


class TestMergeResults:
    def test_matches_unsharded_including_ties(self, corpus):
        reference = BruteForceIndex(corpus)
        indexes, ids = _split(corpus, 3)
        # corpus[2] is duplicated twice, so querying it produces a
        # three-way zero-distance tie the merge must order by global id.
        queries = [corpus[2], corpus[0], corpus[-1] + 0.01]
        for query in queries:
            for k in (1, 3, 7):
                per_shard = [
                    idx.query(query, k=min(k, idx.n_points))
                    for idx in indexes
                ]
                merged = merge_results(per_shard, ids, k)
                expected = reference.query(query, k=k)
                assert merged.indices.tolist() == expected.indices.tolist()
                assert (
                    merged.distances.tolist() == expected.distances.tolist()
                )

    def test_stats_are_summed(self, corpus):
        indexes, ids = _split(corpus, 4)
        per_shard = [idx.query(corpus[5], k=2) for idx in indexes]
        merged = merge_results(per_shard, ids, 2)
        assert merged.stats == QueryStats(
            points_scanned=corpus.shape[0],
            nodes_visited=sum(r.stats.nodes_visited for r in per_shard),
            nodes_pruned=sum(r.stats.nodes_pruned for r in per_shard),
        )

    def test_short_shard_results_allowed(self):
        # An approximate index may return fewer than k candidates; the
        # merged result is then short too, never padded.
        sparse = KnnResult(neighbors=(Neighbor(index=0, distance=1.0),))
        empty = KnnResult(neighbors=())
        merged = merge_results(
            [sparse, empty], [np.array([4]), np.array([9])], k=3
        )
        assert merged.indices.tolist() == [4]

    def test_mismatched_lengths_rejected(self):
        result = KnnResult(neighbors=())
        with pytest.raises(ValueError, match="id arrays"):
            merge_results([result], [np.array([0]), np.array([1])], k=1)


class TestMergeBatches:
    def test_rowwise_merge_matches_unsharded(self, corpus):
        reference = BruteForceIndex(corpus)
        indexes, ids = _split(corpus, 3, method="round-robin")
        queries = np.vstack([corpus[2], corpus[40] + 0.05])
        per_shard = [idx.query_batch(queries, k=4) for idx in indexes]
        merged = merge_batches(per_shard, ids, 4)
        expected = reference.query_batch(queries, k=4)
        assert merged.indices.tolist() == expected.indices.tolist()
        assert merged.distances.tolist() == expected.distances.tolist()
        assert merged.stats == expected.stats

    def test_empty_batch(self):
        batches = [BatchKnnResult(results=()), BatchKnnResult(results=())]
        merged = merge_batches(
            batches, [np.array([0]), np.array([1])], k=1
        )
        assert len(merged) == 0

    def test_row_count_disagreement_rejected(self):
        one = BatchKnnResult(results=(KnnResult(neighbors=()),))
        none = BatchKnnResult(results=())
        with pytest.raises(ValueError, match="row count"):
            merge_batches([one, none], [np.array([0]), np.array([1])], k=1)
