"""Partitioning and manifest round-trip behavior."""

import json

import numpy as np
import pytest

from repro.search.snapshot import SnapshotError, snapshot_kind
from repro.shard import (
    MANIFEST_NAME,
    ShardManifestError,
    build_shards,
    load_manifest,
    partition_labels,
)


class TestPartitionLabels:
    def test_round_robin_interleaves(self, corpus):
        labels = partition_labels(corpus, 4)
        assert labels.shape == (corpus.shape[0],)
        assert np.array_equal(labels, np.arange(corpus.shape[0]) % 4)

    def test_every_shard_nonempty_both_methods(self, corpus):
        for method in ("round-robin", "projected"):
            labels = partition_labels(corpus, 5, method=method, seed=3)
            assert set(np.unique(labels)) == set(range(5)), method

    def test_projected_is_deterministic(self, corpus):
        first = partition_labels(corpus, 3, method="projected", seed=7)
        second = partition_labels(corpus, 3, method="projected", seed=7)
        assert np.array_equal(first, second)

    def test_single_shard_trivial(self, corpus):
        for method in ("round-robin", "projected"):
            labels = partition_labels(corpus, 1, method=method)
            assert np.array_equal(labels, np.zeros(corpus.shape[0]))

    def test_rejects_bad_shard_counts(self, corpus):
        with pytest.raises(ValueError, match="positive"):
            partition_labels(corpus, 0)
        with pytest.raises(ValueError, match="exceeds the corpus size"):
            partition_labels(corpus, corpus.shape[0] + 1)

    def test_rejects_unknown_method(self, corpus):
        with pytest.raises(ValueError, match="method"):
            partition_labels(corpus, 2, method="alphabetical")


class TestBuildShards:
    def test_round_trip(self, corpus, tmp_path):
        manifest = build_shards(
            corpus, str(tmp_path), 3, kind="kdtree", method="round-robin"
        )
        assert manifest.n_shards == 3
        assert manifest.kind == "kdtree"
        assert manifest.n_points == corpus.shape[0]
        assert manifest.dimensionality == corpus.shape[1]
        reloaded = load_manifest(str(tmp_path))
        assert reloaded == manifest
        for spec in reloaded.shards:
            assert snapshot_kind(spec.snapshot_path) == "kdtree"
            assert spec.load_ids().size == spec.n_points
        # The shards exactly partition the corpus rows.
        all_ids = np.concatenate(
            [spec.load_ids() for spec in reloaded.shards]
        )
        assert np.array_equal(
            np.sort(all_ids), np.arange(corpus.shape[0])
        )

    def test_shard_rows_match_global_rows(self, corpus, tmp_path):
        from repro.search import load_index

        manifest = build_shards(
            corpus, str(tmp_path), 4, kind="bruteforce", method="projected"
        )
        for spec in manifest.shards:
            index = load_index(spec.snapshot_path)
            assert index.n_points == spec.n_points
            # Every global row assigned to this shard is present verbatim:
            # self-querying it hits at distance exactly zero.
            for gid in spec.load_ids():
                result = index.query(corpus[gid], k=1)
                assert result.distances[0] == 0.0

    def test_rejects_unknown_kind(self, corpus, tmp_path):
        with pytest.raises(ValueError, match="unknown index kind"):
            build_shards(corpus, str(tmp_path), 2, kind="btree")


class TestLoadManifest:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ShardManifestError, match="not a readable"):
            load_manifest(str(tmp_path / "absent.json"))

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_text(json.dumps({"schema": "something/v9"}))
        with pytest.raises(ShardManifestError, match="schema"):
            load_manifest(str(path))

    def test_corrupted_ids_fail_partition_check(self, corpus, tmp_path):
        manifest = build_shards(corpus, str(tmp_path), 3)
        ids = manifest.shards[0].load_ids()
        ids[0] = ids[1]  # duplicate a global id -> no longer a partition
        np.save(manifest.shards[0].ids_path, ids)
        with pytest.raises(ShardManifestError, match="partition"):
            load_manifest(str(tmp_path))
        # The check is opt-out for callers that already validated.
        loaded = load_manifest(str(tmp_path), check_partition=False)
        assert loaded.n_shards == 3

    def test_kind_mismatch(self, corpus, tmp_path):
        build_shards(corpus, str(tmp_path), 2, kind="bruteforce")
        raw = json.loads((tmp_path / MANIFEST_NAME).read_text())
        raw["kind"] = "kdtree"
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(raw))
        with pytest.raises(ShardManifestError, match="manifest says"):
            load_manifest(str(tmp_path))

    def test_snapshot_must_be_real(self, corpus, tmp_path):
        manifest = build_shards(corpus, str(tmp_path), 2)
        with open(manifest.shards[1].snapshot_path, "w") as handle:
            handle.write("not a snapshot")
        with pytest.raises(SnapshotError):
            load_manifest(str(tmp_path))
