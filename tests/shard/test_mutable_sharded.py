"""Sharded mutable serving: the global merge equals one fresh index.

:class:`MutableShardedServer` partitions the live rowset over member
:class:`MutableIndexServer`\\ s by ``row_id % n_shards`` and re-selects
the global top-k by ``(distance, global id)``.  Because the members
partition the rowset exactly, the merged answer must be bit-identical
to a single index freshly built over all live rows — these tests drive
mutation streams and check that at every step, plus the routing rules
(coordinator-allocated ids, owner-routed deletes), per-member
compaction, and restart-resume with id continuation.
"""

import os

import numpy as np
import pytest

from repro.search.registry import build_index
from repro.serve import MutationError
from repro.shard import MutableShardedServer


def _live_state(corpus_rows):
    """(rows, ids) of the live rowset in ascending global-id order."""
    ids = sorted(corpus_rows)
    rows = np.array([corpus_rows[gid] for gid in ids])
    return rows, ids


def _assert_matches_fresh(server, corpus_rows, probes, k=3):
    rows, ids = _live_state(corpus_rows)
    reference = build_index(server.kind, rows)
    k = min(k, len(ids))
    for probe in probes:
        served = server.query(probe, k)
        expected = reference.query(probe, k)
        assert [n.index for n in served.neighbors] == [
            ids[n.index] for n in expected.neighbors
        ]
        assert [n.distance for n in served.neighbors] == [
            n.distance for n in expected.neighbors
        ]


@pytest.fixture
def data():
    rng = np.random.default_rng(23)
    corpus = rng.standard_normal((30, 4))
    probes = rng.standard_normal((5, 4))
    return corpus, probes, rng


class TestShardedIdentity:
    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_identity_through_mutation(self, tmp_path, data, n_shards):
        corpus, probes, rng = data
        live = {gid: corpus[gid] for gid in range(30)}
        with MutableShardedServer(
            os.path.join(tmp_path, f"s{n_shards}"),
            corpus,
            n_shards=n_shards,
            kind="kdtree",
        ) as server:
            assert server.n_live == 30
            _assert_matches_fresh(server, live, probes)
            for step in range(20):
                if rng.random() < 0.6 or len(live) < 5:
                    row = rng.standard_normal(4)
                    gid = server.insert(row)
                    assert gid not in live  # ids never reuse
                    live[gid] = row
                else:
                    victim = int(rng.choice(sorted(live)))
                    server.delete(victim)
                    del live[victim]
                assert server.n_live == len(live)
                _assert_matches_fresh(server, live, probes)

    def test_identity_across_compact_all(self, tmp_path, data):
        corpus, probes, rng = data
        live = {gid: corpus[gid] for gid in range(30)}
        with MutableShardedServer(
            os.path.join(tmp_path, "c"), corpus, n_shards=2
        ) as server:
            for _ in range(8):
                row = rng.standard_normal(4)
                live[server.insert(row)] = row
            server.delete(4)
            del live[4]
            server.compact_all()
            assert all(
                member.memtable_ops == 0 for member in server.members
            )
            _assert_matches_fresh(server, live, probes)

    def test_query_batch_identity(self, tmp_path, data):
        corpus, probes, rng = data
        live = {gid: corpus[gid] for gid in range(30)}
        with MutableShardedServer(
            os.path.join(tmp_path, "b"), corpus, n_shards=3
        ) as server:
            for _ in range(5):
                row = rng.standard_normal(4)
                live[server.insert(row)] = row
            server.delete(0)
            del live[0]
            rows, ids = _live_state(live)
            reference = build_index("bruteforce", rows)
            batch = server.query_batch(probes, 4)
            expected = reference.query_batch(probes, 4)
            for served, want in zip(batch.results, expected.results):
                assert [n.index for n in served.neighbors] == [
                    ids[n.index] for n in want.neighbors
                ]
                assert [n.distance for n in served.neighbors] == [
                    n.distance for n in want.neighbors
                ]


class TestRoutingRules:
    def test_round_robin_ownership(self, tmp_path, data):
        corpus, _, rng = data
        with MutableShardedServer(
            os.path.join(tmp_path, "o"), corpus, n_shards=3
        ) as server:
            # Seed rows land on shard gid % 3 …
            counts = [member.n_live for member in server.members]
            assert counts == [10, 10, 10]
            assert server.owner_of(7) == 1
            # … and a new insert continues both the id sequence and
            # the round-robin placement.
            gid = server.insert(rng.standard_normal(4))
            assert gid == 30
            assert server.members[0].n_live == 11

    def test_delete_routed_to_owner(self, tmp_path, data):
        corpus, _, _ = data
        with MutableShardedServer(
            os.path.join(tmp_path, "d"), corpus, n_shards=3
        ) as server:
            server.delete(7)
            assert server.members[1].n_live == 9
            with pytest.raises(KeyError):
                server.delete(7)

    def test_more_shards_than_rows_refused(self, tmp_path):
        with pytest.raises(MutationError, match="seed row"):
            MutableShardedServer(
                os.path.join(tmp_path, "x"),
                np.ones((2, 3)),
                n_shards=5,
            )

    def test_non_exact_kind_refused(self, tmp_path, data):
        corpus, _, _ = data
        with pytest.raises(MutationError, match="exact"):
            MutableShardedServer(
                os.path.join(tmp_path, "l"), corpus, kind="lsh"
            )


class TestShardedResume:
    def test_resume_continues_global_ids(self, tmp_path, data):
        corpus, probes, rng = data
        root = os.path.join(tmp_path, "r")
        live = {gid: corpus[gid] for gid in range(30)}
        with MutableShardedServer(root, corpus, n_shards=2) as server:
            row = rng.standard_normal(4)
            gid = server.insert(row)
            assert gid == 30
            live[gid] = row
            server.delete(1)
            del live[1]
            server.compact_all()  # persist memtables before shutdown
        with MutableShardedServer(root, n_shards=2) as server:
            assert server.n_live == 30
            row = rng.standard_normal(4)
            gid = server.insert(row)
            assert gid == 31
            live[gid] = row
            _assert_matches_fresh(server, live, probes)
