"""Shared fixtures for the sharding tests.

The sharded coordinator runs the same real threads (and optionally
worker processes) as the serving stack, and its failure-path tests
deliberately kill member servers; the same SIGALRM watchdog used by
``tests/serve`` keeps a recovery bug from wedging the session.
"""

import signal

import numpy as np
import pytest

_TEST_TIMEOUT_SECONDS = 120


@pytest.fixture(autouse=True)
def _watchdog(request):
    """Fail (rather than hang) any shard test that exceeds the budget."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - POSIX only
        yield
        return

    def _expired(signum, frame):
        pytest.fail(
            f"{request.node.nodeid} exceeded the "
            f"{_TEST_TIMEOUT_SECONDS}s shard-test watchdog",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(_TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def corpus():
    """A small corpus with duplicated rows, so distance ties are real."""
    generator = np.random.default_rng(31)
    points = generator.normal(size=(96, 5))
    points[11] = points[2]
    points[57] = points[2]
    return points
