"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestDiagnoseCommand:
    def test_preset(self, capsys):
        assert main(["diagnose", "ionosphere", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "reducible" in out
        assert "coherence probability" in out

    def test_uniform_is_noisy(self, capsys):
        assert main(["diagnose", "uniform"]) == 0
        assert "noisy" in capsys.readouterr().out

    def test_csv_input(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        rows = [
            ",".join(f"{v:.4f}" for v in rng.normal(size=6)) + f",{i % 2}"
            for i in range(40)
        ]
        path = tmp_path / "data.csv"
        path.write_text("\n".join(rows) + "\n")
        assert main(["diagnose", str(path)]) == 0
        assert "data.csv" in capsys.readouterr().out

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit, match="neither a preset"):
            main(["diagnose", "no-such-dataset"])


class TestEvaluateCommand:
    def test_noisy_preset_with_coherence_ordering(self, capsys):
        assert main(
            ["evaluate", "noisy-a", "--ordering", "coherence", "--no-scale"]
        ) == 0
        out = capsys.readouterr().out
        assert "optimal accuracy" in out
        assert "1%-threshold" in out


class TestSweepCommand:
    def test_prints_curve_and_optimum(self, capsys):
        assert main(["sweep", "ionosphere", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "accuracy vs dimensionality" in out
        assert "optimum:" in out


class TestReduceCommand:
    def test_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "reduced.csv"
        assert main(
            ["reduce", "ionosphere", "--components", "4", "-o", str(output)]
        ) == 0
        lines = output.read_text().strip().splitlines()
        header = lines[0].split(",")
        assert len(header) == 5  # 4 components + label
        assert header[-1] == "label"
        assert len(lines) == 1 + 351
        assert "wrote 351 rows" in capsys.readouterr().out

    def test_automatic_budget_default(self, tmp_path):
        output = tmp_path / "auto.csv"
        assert main(["reduce", "noisy-b", "--no-scale", "-o", str(output)]) == 0
        header = output.read_text().splitlines()[0].split(",")
        assert 2 <= len(header) <= 20  # automatic cut picks the concepts


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_ordering(self):
        with pytest.raises(SystemExit):
            main(["sweep", "ionosphere", "--ordering", "best"])


class TestExperimentCommand:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig03" in out
        assert "table1" in out
        assert "sec3" in out

    def test_run_single(self, capsys):
        from repro.cli import main

        assert main(["experiment", "sec3"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 5 prediction" in out
        assert "0.6827" in out

    def test_unknown_id_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["experiment", "fig99"])


class TestExperimentJobs:
    def test_comma_separated_ids_in_order(self, capsys):
        assert main(["experiment", "sec3,sec3"]) == 0
        out = capsys.readouterr().out
        assert out.count("Eq. 5 prediction") == 2

    def test_process_pool_output_matches_serial(self, capsys):
        assert main(["experiment", "sec3,sec3"]) == 0
        serial = capsys.readouterr().out
        assert main(["experiment", "sec3,sec3", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(SystemExit, match="jobs"):
            main(["experiment", "sec3", "--jobs", "0"])

    def test_unknown_id_fails_before_any_run(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["experiment", "sec3,fig99", "--jobs", "2"])


class TestServeBenchCommand:
    def test_in_process_smoke(self, capsys):
        assert main(
            [
                "serve-bench", "--n", "120", "--dims", "4", "--queries",
                "20", "--workers", "0", "--cache-size", "8",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "bit-identical to sequential" in out
        assert "in-process" in out
        assert "cache hits" in out

    def test_non_default_index_kind(self, capsys):
        assert main(
            [
                "serve-bench", "--index", "kdtree", "--n", "100", "--dims",
                "4", "--queries", "12", "--workers", "0",
            ]
        ) == 0
        assert "kdtree" in capsys.readouterr().out

    def test_rejects_negative_workers(self):
        with pytest.raises(SystemExit, match="workers"):
            main(["serve-bench", "--workers", "-1", "--n", "50"])


class TestServeBenchMutateCommand:
    def test_mutate_smoke(self, capsys):
        assert main(
            [
                "serve-bench", "--mutate", "--index", "kdtree",
                "--n", "60", "--dims", "4", "--queries", "8", "--k", "3",
                "--mutate-ops", "40", "--compact-every", "20",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "mutable serving" in out
        assert "bit-identical to fresh rebuild" in out
        assert "yes" in out

    def test_mutate_wal_sync_policy(self, capsys):
        assert main(
            [
                "serve-bench", "--mutate", "--index", "kdtree",
                "--n", "60", "--dims", "4", "--queries", "8", "--k", "3",
                "--mutate-ops", "30", "--compact-every", "20",
                "--wal-sync", "group",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "wal sync policy" in out
        assert "group" in out

    def test_wal_sync_requires_mutate(self):
        with pytest.raises(SystemExit, match="--wal-sync requires"):
            main(
                [
                    "serve-bench", "--wal-sync", "always",
                    "--n", "60", "--dims", "4",
                ]
            )

    def test_mutate_rejects_non_exact_kind(self):
        with pytest.raises(SystemExit, match="cannot serve mutations"):
            main(
                [
                    "serve-bench", "--mutate", "--index", "lsh",
                    "--n", "60", "--dims", "4",
                ]
            )

    def test_registry_derived_flags_keep_kind_rejection(self):
        # The serve-bench parser derives its index flags from the
        # registry specs; a wrong-kind flag still fails loudly.
        with pytest.raises(SystemExit, match="n-probes"):
            main(
                [
                    "serve-bench", "--mutate", "--index", "kdtree",
                    "--n", "60", "--dims", "4", "--n-probes", "3",
                ]
            )

    def test_registry_choices_enforced_by_argparse(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "serve-bench", "--index", "vafile", "--n", "60",
                    "--bit-allocation", "nonsense",
                ]
            )


class TestIndexBuildCommand:
    def test_projscreen_with_kind_alias(self, tmp_path, capsys):
        out_path = tmp_path / "proj.npz"
        assert main(
            [
                "index", "build", "uniform", "--kind", "projscreen",
                "--subspace-dim", "8", "--ordering", "coherence",
                "-o", str(out_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "projscreen" in out
        assert "screen 8/50 dims" in out
        assert "coherence-ordered" in out

        from repro.search import ProjectionScreenedIndex, load_index

        loaded = load_index(str(out_path))
        assert type(loaded) is ProjectionScreenedIndex
        assert loaded.subspace_dim == 8
        assert loaded.ordering == "coherence"

    def test_projscreen_flags_rejected_for_other_kinds(self, tmp_path):
        with pytest.raises(SystemExit, match="subspace-dim"):
            main(
                [
                    "index", "build", "uniform", "--index", "kdtree",
                    "--subspace-dim", "4",
                    "-o", str(tmp_path / "kd.npz"),
                ]
            )
        with pytest.raises(SystemExit, match="ordering"):
            main(
                [
                    "index", "build", "uniform", "--index", "kdtree",
                    "--ordering", "eigen",
                    "-o", str(tmp_path / "kd.npz"),
                ]
            )

    def test_out_of_range_subspace_dim_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="subspace_dim"):
            main(
                [
                    "index", "build", "uniform", "--kind", "projscreen",
                    "--subspace-dim", "999",
                    "-o", str(tmp_path / "p.npz"),
                ]
            )


class TestShardBuildCommand:
    def test_projscreen_shards_share_projection(self, tmp_path, capsys):
        out_dir = tmp_path / "shards"
        assert main(
            [
                "shard", "build", "uniform", "--kind", "projscreen",
                "--shards", "3", "--subspace-dim", "5",
                "-o", str(out_dir),
            ]
        ) == 0
        assert "3 x projscreen shards" in capsys.readouterr().out

        from repro.search import load_index
        from repro.shard import load_manifest

        manifest = load_manifest(str(out_dir))
        loaded = [
            load_index(spec.snapshot_path) for spec in manifest.shards
        ]
        first = loaded[0].projection.matrix
        assert first.shape == (50, 5)
        for shard_index in loaded[1:]:
            assert np.array_equal(shard_index.projection.matrix, first)


class TestExperimentSaveDir:
    def test_reports_written(self, tmp_path, capsys):
        from repro.cli import main

        save_dir = str(tmp_path / "reports")
        assert main(["experiment", "sec3", "--save-dir", save_dir]) == 0
        report = (tmp_path / "reports" / "sec3.txt").read_text()
        assert "Eq. 5 prediction" in report
        assert "reports written" in capsys.readouterr().out
