"""Tests for repro.stats.normal — the from-scratch normal distribution."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.normal import (
    erf,
    erfc,
    norm_cdf,
    norm_pdf,
    norm_quantile,
    symmetric_mass,
)


class TestErf:
    def test_zero(self):
        assert erf(0.0) == 0.0

    def test_known_value_one(self):
        # erf(1) from tables.
        assert erf(1.0) == pytest.approx(0.8427007929497149, abs=1e-14)

    def test_known_value_two(self):
        assert erf(2.0) == pytest.approx(0.9953222650189527, abs=1e-14)

    def test_known_value_half(self):
        assert erf(0.5) == pytest.approx(0.5204998778130465, abs=1e-14)

    def test_odd_symmetry(self):
        for x in (0.1, 0.9, 2.5, 7.0):
            assert erf(-x) == -erf(x)

    def test_saturates_to_one(self):
        assert erf(30.0) == 1.0
        assert erf(-30.0) == -1.0

    def test_matches_stdlib_across_range(self):
        # The from-scratch scalar implementation against C math.erf.
        for x in np.linspace(-6, 6, 241):
            assert erf(float(x)) == pytest.approx(math.erf(x), abs=1e-14)

    def test_continuity_at_series_cf_boundary(self):
        # The implementation switches algorithms at |x| = 2.
        below = erf(2.0 - 1e-12)
        above = erf(2.0 + 1e-12)
        assert abs(above - below) < 1e-11

    def test_array_input_returns_array(self):
        values = erf(np.array([0.0, 1.0, -1.0]))
        assert isinstance(values, np.ndarray)
        assert values[0] == 0.0
        assert values[1] == pytest.approx(-values[2])

    def test_nan_propagates(self):
        assert math.isnan(erf(float("nan")))

    @given(st.floats(min_value=-10, max_value=10))
    @settings(max_examples=200)
    def test_bounded_and_monotone_nearby(self, x):
        value = erf(x)
        assert -1.0 <= value <= 1.0
        assert erf(x + 1e-3) >= value - 1e-12


class TestErfc:
    def test_complements_erf(self):
        for x in (-3.0, -0.5, 0.0, 0.5, 1.7, 2.5):
            assert erfc(x) == pytest.approx(1.0 - erf(x), abs=1e-12)

    def test_reflection(self):
        assert erfc(-1.3) == pytest.approx(2.0 - erfc(1.3), abs=1e-14)

    def test_deep_tail_no_cancellation(self):
        # 1 - erf(6) cancels catastrophically; erfc(6) must not.
        assert erfc(6.0) == pytest.approx(2.1519736712498913e-17, rel=1e-10)

    def test_matches_stdlib(self):
        for x in np.linspace(-5, 8, 131):
            assert erfc(float(x)) == pytest.approx(math.erfc(x), rel=1e-12, abs=1e-300)

    def test_array_input(self):
        values = erfc(np.array([0.0, 10.0]))
        assert values[0] == pytest.approx(1.0)
        assert values[1] < 1e-40


class TestNormPdf:
    def test_peak_value(self):
        assert norm_pdf(0.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))

    def test_symmetry(self):
        assert norm_pdf(1.234) == pytest.approx(norm_pdf(-1.234))

    def test_integrates_to_one(self):
        zs = np.linspace(-10, 10, 40001)
        integral = np.trapezoid(norm_pdf(zs), zs)
        assert integral == pytest.approx(1.0, abs=1e-10)


class TestNormCdf:
    def test_center(self):
        assert norm_cdf(0.0) == pytest.approx(0.5)

    def test_one_sigma(self):
        assert norm_cdf(1.0) == pytest.approx(0.8413447460685429, abs=1e-12)

    def test_symmetry(self):
        assert norm_cdf(-1.5) == pytest.approx(1.0 - norm_cdf(1.5), abs=1e-14)

    def test_limits(self):
        assert norm_cdf(-40.0) == 0.0
        assert norm_cdf(40.0) == 1.0

    def test_monotone_array(self):
        zs = np.linspace(-5, 5, 101)
        values = norm_cdf(zs)
        assert np.all(np.diff(values) >= 0.0)

    def test_derivative_matches_pdf(self):
        h = 1e-6
        for z in (-2.0, -0.3, 0.0, 1.1, 2.7):
            numeric = (norm_cdf(z + h) - norm_cdf(z - h)) / (2 * h)
            assert numeric == pytest.approx(norm_pdf(z), rel=1e-5)


class TestSymmetricMass:
    def test_zero_is_zero(self):
        assert symmetric_mass(0.0) == 0.0

    def test_one_sigma_value(self):
        # The paper's uniform-data coherence probability, Eq. 5.
        assert symmetric_mass(1.0) == pytest.approx(0.6826894921370859, abs=1e-12)

    def test_two_sigma_value(self):
        assert symmetric_mass(2.0) == pytest.approx(0.9544997361036416, abs=1e-12)

    def test_equals_two_phi_minus_one(self):
        for z in (0.3, 1.0, 2.2, 4.0):
            assert symmetric_mass(z) == pytest.approx(2 * norm_cdf(z) - 1, abs=1e-13)

    def test_array(self):
        values = symmetric_mass(np.array([0.0, 1.0, 100.0]))
        assert values[0] == 0.0
        assert values[2] == 1.0

    @given(st.floats(min_value=0, max_value=50))
    @settings(max_examples=200)
    def test_range_and_monotonicity(self, z):
        value = symmetric_mass(z)
        assert 0.0 <= value <= 1.0
        assert symmetric_mass(z + 0.01) >= value


class TestNormQuantile:
    def test_median(self):
        assert norm_quantile(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_known_values(self):
        assert norm_quantile(0.975) == pytest.approx(1.959963984540054, abs=1e-9)
        assert norm_quantile(0.8413447460685429) == pytest.approx(1.0, abs=1e-9)

    def test_symmetry(self):
        assert norm_quantile(0.25) == pytest.approx(-norm_quantile(0.75), abs=1e-12)

    def test_roundtrip_with_cdf(self):
        for p in (1e-8, 0.001, 0.3, 0.5, 0.7, 0.999, 1 - 1e-8):
            assert norm_cdf(norm_quantile(p)) == pytest.approx(p, rel=1e-9)

    def test_boundaries(self):
        assert norm_quantile(0.0) == -math.inf
        assert norm_quantile(1.0) == math.inf

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            norm_quantile(-0.1)
        with pytest.raises(ValueError):
            norm_quantile(1.1)

    def test_array(self):
        values = norm_quantile(np.array([0.1, 0.5, 0.9]))
        assert values[1] == pytest.approx(0.0, abs=1e-12)
        assert values[0] == pytest.approx(-values[2], abs=1e-10)

    @given(st.floats(min_value=1e-6, max_value=1 - 1e-6))
    @settings(max_examples=200)
    def test_roundtrip_property(self, p):
        assert norm_cdf(norm_quantile(p)) == pytest.approx(p, rel=1e-6, abs=1e-9)
