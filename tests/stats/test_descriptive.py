"""Tests for repro.stats.descriptive."""

import numpy as np
import pytest

from repro.stats.descriptive import (
    column_means,
    column_stds,
    column_variances,
    fractional_ranks,
    mean,
    root_mean_square,
    standard_deviation,
    variance,
    zscores,
)


class TestFractionalRanks:
    def test_distinct_values(self):
        assert fractional_ranks([30.0, 10.0, 20.0]).tolist() == [3.0, 1.0, 2.0]

    def test_tied_pair_gets_average(self):
        # The textbook example: [10, 20, 20, 30] -> [1, 2.5, 2.5, 4].
        assert fractional_ranks([10.0, 20.0, 20.0, 30.0]).tolist() == [
            1.0,
            2.5,
            2.5,
            4.0,
        ]

    def test_all_equal(self):
        assert fractional_ranks(np.ones(5)).tolist() == [3.0] * 5

    def test_ranks_sum_is_invariant(self, rng):
        # Average ranks always sum to n(n+1)/2, ties or not.
        values = rng.integers(0, 5, size=40).astype(float)
        assert fractional_ranks(values).sum() == 40 * 41 / 2

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-d"):
            fractional_ranks(np.ones((2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            fractional_ranks([1.0, float("nan")])


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_single_value(self):
        assert mean([7.5]) == 7.5

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            mean([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            mean([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            mean([1.0, float("inf")])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-d"):
            mean([[1.0, 2.0]])


class TestVariance:
    def test_population(self):
        assert variance([1.0, 2.0, 3.0]) == pytest.approx(2.0 / 3.0)

    def test_sample(self):
        assert variance([1.0, 2.0, 3.0], ddof=1) == pytest.approx(1.0)

    def test_constant_is_zero(self):
        assert variance([4.0, 4.0, 4.0]) == 0.0

    def test_needs_enough_observations(self):
        with pytest.raises(ValueError, match="ddof"):
            variance([1.0], ddof=1)

    def test_std_is_sqrt(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert standard_deviation(values) == pytest.approx(
            np.sqrt(variance(values))
        )


class TestRootMeanSquare:
    def test_about_zero_not_about_mean(self):
        # RMS about zero of a constant is the constant itself, even
        # though its variance is zero — this is the paper's sigma.
        assert root_mean_square([3.0, 3.0, 3.0]) == 3.0

    def test_mixed_signs(self):
        assert root_mean_square([-1.0, 1.0]) == 1.0

    def test_zeros(self):
        assert root_mean_square([0.0, 0.0]) == 0.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            root_mean_square([float("nan")])


class TestZscores:
    def test_zero_mean_unit_std(self):
        z = zscores([1.0, 2.0, 3.0, 4.0])
        assert np.mean(z) == pytest.approx(0.0, abs=1e-12)
        assert np.std(z) == pytest.approx(1.0)

    def test_constant_raises(self):
        with pytest.raises(ValueError, match="constant"):
            zscores([2.0, 2.0])

    def test_preserves_order(self):
        z = zscores([5.0, 1.0, 3.0])
        assert z[0] > z[2] > z[1]


class TestColumnStatistics:
    def test_column_means(self):
        matrix = [[1.0, 10.0], [3.0, 30.0]]
        assert np.allclose(column_means(matrix), [2.0, 20.0])

    def test_column_variances(self):
        matrix = [[0.0, 0.0], [2.0, 4.0]]
        assert np.allclose(column_variances(matrix), [1.0, 4.0])

    def test_column_stds(self):
        matrix = [[0.0, 0.0], [2.0, 4.0]]
        assert np.allclose(column_stds(matrix), [1.0, 2.0])

    def test_sample_variance(self):
        matrix = [[0.0], [2.0]]
        assert np.allclose(column_variances(matrix, ddof=1), [2.0])

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            column_means([1.0, 2.0])

    def test_rejects_too_few_rows_for_ddof(self):
        with pytest.raises(ValueError, match="ddof"):
            column_variances([[1.0, 2.0]], ddof=1)
