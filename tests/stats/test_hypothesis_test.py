"""Tests for repro.stats.hypothesis_test — the Hypothesis-2.1 machinery."""

import numpy as np
import pytest

from repro.stats.hypothesis_test import (
    null_contribution_test,
    one_sample_z_test,
)
from repro.stats.normal import symmetric_mass


class TestNullContributionTest:
    def test_single_nonzero_contribution_gives_factor_one(self):
        # The Section 3 uniform-data case: one active dimension.
        result = null_contribution_test([0.7, 0.0, 0.0, 0.0])
        assert result.coherence_factor == pytest.approx(1.0)
        assert result.coherence_probability == pytest.approx(
            symmetric_mass(1.0)
        )

    def test_single_dimension_factor_independent_of_magnitude(self):
        small = null_contribution_test([0.001, 0.0, 0.0])
        large = null_contribution_test([1000.0, 0.0, 0.0])
        assert small.coherence_factor == pytest.approx(large.coherence_factor)

    def test_perfect_agreement_reaches_sqrt_d(self):
        d = 16
        result = null_contribution_test([0.5] * d)
        assert result.coherence_factor == pytest.approx(np.sqrt(d))

    def test_perfect_cancellation_is_zero(self):
        result = null_contribution_test([1.0, -1.0, 2.0, -2.0])
        assert result.coherence_factor == 0.0
        assert result.coherence_probability == 0.0
        assert result.p_value == 1.0

    def test_all_zero_contributions_carry_no_evidence(self):
        result = null_contribution_test([0.0, 0.0, 0.0])
        assert result.coherence_factor == 0.0
        assert result.coherence_probability == 0.0
        assert result.rms_about_zero == 0.0

    def test_sign_flip_invariance(self):
        values = [0.3, -0.1, 0.8, 0.2]
        flipped = [-v for v in values]
        assert null_contribution_test(values).coherence_factor == pytest.approx(
            null_contribution_test(flipped).coherence_factor
        )

    def test_permutation_invariance(self):
        values = [0.3, -0.1, 0.8, 0.2]
        shuffled = [0.8, 0.3, 0.2, -0.1]
        assert null_contribution_test(values).coherence_factor == pytest.approx(
            null_contribution_test(shuffled).coherence_factor
        )

    def test_scaling_invariance(self):
        values = np.array([0.3, -0.1, 0.8, 0.2])
        assert null_contribution_test(values).coherence_factor == pytest.approx(
            null_contribution_test(values * 17.0).coherence_factor
        )

    def test_p_value_complements_probability(self):
        result = null_contribution_test([0.4, 0.5, 0.3, 0.45])
        assert result.p_value == pytest.approx(
            1.0 - result.coherence_probability
        )

    def test_rms_is_about_zero(self):
        result = null_contribution_test([2.0, 2.0])
        assert result.rms_about_zero == pytest.approx(2.0)

    def test_records_dimensionality(self):
        assert null_contribution_test([1.0, 2.0, 3.0]).n_contributions == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            null_contribution_test([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-d"):
            null_contribution_test([[1.0, 2.0]])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            null_contribution_test([1.0, float("nan")])

    def test_random_noise_scores_low(self):
        rng = np.random.default_rng(0)
        probabilities = [
            null_contribution_test(rng.normal(size=100)).coherence_probability
            for _ in range(50)
        ]
        # Zero-mean noise should rarely look coherent.
        assert np.mean(probabilities) < 0.75

    def test_correlated_contributions_score_high(self):
        rng = np.random.default_rng(0)
        contributions = 1.0 + 0.1 * rng.normal(size=100)
        result = null_contribution_test(contributions)
        assert result.coherence_probability > 0.999


class TestOneSampleZTest:
    def test_mean_at_null_gives_zero_z(self):
        z, p = one_sample_z_test([-1.0, 1.0], null_mean=0.0)
        assert z == 0.0
        assert p == pytest.approx(1.0)

    def test_known_sigma(self):
        z, p = one_sample_z_test([1.0, 1.0, 1.0, 1.0], null_mean=0.0, sigma=2.0)
        assert z == pytest.approx(1.0)
        assert p == pytest.approx(2 * (1 - 0.8413447460685429), rel=1e-9)

    def test_large_effect_small_p(self):
        rng = np.random.default_rng(1)
        sample = 5.0 + rng.normal(size=200)
        _, p = one_sample_z_test(sample, null_mean=0.0)
        assert p < 1e-10

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            one_sample_z_test([1.0])

    def test_rejects_zero_sigma(self):
        with pytest.raises(ValueError, match="positive"):
            one_sample_z_test([1.0, 1.0], sigma=0.0)

    def test_rejects_constant_sample_without_sigma(self):
        with pytest.raises(ValueError, match="positive"):
            one_sample_z_test([1.0, 1.0])
