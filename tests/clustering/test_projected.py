"""Tests for the projected-clustering extension (Section 3.1)."""

import numpy as np
import pytest

from repro.clustering.projected import (
    ProjectedClustering,
    per_cluster_reduction,
)


def _subspace_clusters(rng, n_per_cluster=60, d=12):
    """Two clusters, each tight in a different 3-dim subspace."""
    a = rng.normal(size=(n_per_cluster, d)) * 4.0
    a[:, :3] = rng.normal(size=(n_per_cluster, 3)) * 0.1 + 10.0
    b = rng.normal(size=(n_per_cluster, d)) * 4.0
    b[:, 6:9] = rng.normal(size=(n_per_cluster, 3)) * 0.1 - 10.0
    return np.vstack([a, b])


class TestProjectedClustering:
    def test_recovers_subspace_clusters(self):
        rng = np.random.default_rng(0)
        data = _subspace_clusters(rng)
        result = ProjectedClustering(n_clusters=2, n_dims=3, seed=0).fit(data)
        labels = result.labels
        first_half, second_half = labels[:60], labels[60:]
        # Each planted cluster maps (almost entirely) to one label.
        majority_first = np.bincount(first_half).argmax()
        majority_second = np.bincount(second_half).argmax()
        assert majority_first != majority_second
        purity = (
            np.sum(first_half == majority_first)
            + np.sum(second_half == majority_second)
        ) / 120
        assert purity > 0.9

    def test_finds_the_planted_subspaces(self):
        rng = np.random.default_rng(0)
        data = _subspace_clusters(rng)
        result = ProjectedClustering(n_clusters=2, n_dims=3, seed=0).fit(data)
        found = {tuple(dims) for dims in result.cluster_dims}
        assert (0, 1, 2) in found
        assert (6, 7, 8) in found

    def test_labels_cover_all_points(self, rng):
        data = rng.normal(size=(50, 6))
        result = ProjectedClustering(n_clusters=3, n_dims=2, seed=1).fit(data)
        assert result.labels.shape == (50,)
        assert set(result.labels.tolist()) <= {0, 1, 2}

    def test_no_empty_clusters(self, rng):
        data = rng.normal(size=(40, 5))
        result = ProjectedClustering(n_clusters=4, n_dims=2, seed=2).fit(data)
        for c in range(4):
            assert np.sum(result.labels == c) >= 1

    def test_medoids_are_members(self, rng):
        data = rng.normal(size=(40, 5))
        result = ProjectedClustering(n_clusters=3, n_dims=2, seed=0).fit(data)
        for c in range(3):
            medoid = result.medoid_indices[c]
            assert result.labels[medoid] == c

    def test_deterministic(self, rng):
        data = rng.normal(size=(60, 8))
        a = ProjectedClustering(n_clusters=2, n_dims=3, seed=5).fit(data)
        b = ProjectedClustering(n_clusters=2, n_dims=3, seed=5).fit(data)
        assert np.array_equal(a.labels, b.labels)

    def test_single_cluster(self, rng):
        data = rng.normal(size=(30, 4))
        result = ProjectedClustering(n_clusters=1, n_dims=2, seed=0).fit(data)
        assert np.all(result.labels == 0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ProjectedClustering(n_clusters=0, n_dims=1)
        with pytest.raises(ValueError):
            ProjectedClustering(n_clusters=1, n_dims=0)
        with pytest.raises(ValueError):
            ProjectedClustering(n_clusters=1, n_dims=1, max_iterations=0)

    def test_rejects_more_clusters_than_points(self, rng):
        with pytest.raises(ValueError, match="points"):
            ProjectedClustering(n_clusters=10, n_dims=1).fit(rng.normal(size=(5, 3)))

    def test_rejects_subspace_larger_than_data(self, rng):
        with pytest.raises(ValueError, match="n_dims"):
            ProjectedClustering(n_clusters=2, n_dims=9).fit(rng.normal(size=(20, 4)))


class TestPerClusterReduction:
    def test_fits_one_reducer_per_cluster(self):
        rng = np.random.default_rng(0)
        data = _subspace_clusters(rng)
        clustering = ProjectedClustering(n_clusters=2, n_dims=3, seed=0).fit(data)
        results = per_cluster_reduction(data, clustering, n_components=2)
        assert len(results) == 2
        covered = np.concatenate([members for members, _ in results])
        assert sorted(covered.tolist()) == list(range(120))
        for members, reducer in results:
            assert reducer.n_selected == 2
            reduced = reducer.transform(data[members])
            assert reduced.shape == (members.size, 2)

    def test_budget_clamped_to_cluster_support(self, rng):
        data = rng.normal(size=(30, 4))
        clustering = ProjectedClustering(n_clusters=2, n_dims=2, seed=0).fit(data)
        results = per_cluster_reduction(data, clustering, n_components=10)
        for _, reducer in results:
            assert reducer.n_selected <= 4
