"""Tests for the k-means substrate."""

import numpy as np
import pytest

from repro.clustering.kmeans import kmeans


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        centers = np.array([[0.0, 0.0], [20.0, 20.0], [-20.0, 20.0]])
        labels = rng.integers(0, 3, size=300)
        data = centers[labels] + rng.normal(size=(300, 2))
        result = kmeans(data, n_clusters=3, seed=0)
        # Each found cluster maps to one true blob.
        for c in range(3):
            members = labels[result.labels == c]
            assert members.size > 0
            purity = np.bincount(members).max() / members.size
            assert purity > 0.95

    def test_centers_are_member_means(self, rng):
        data = rng.normal(size=(100, 4))
        result = kmeans(data, n_clusters=4, seed=1)
        for c in range(4):
            members = data[result.labels == c]
            assert members.shape[0] > 0
            assert np.allclose(result.centers[c], members.mean(axis=0))

    def test_inertia_matches_definition(self, rng):
        data = rng.normal(size=(60, 3))
        result = kmeans(data, n_clusters=3, seed=0)
        direct = sum(
            float(np.sum(np.square(row - result.centers[label])))
            for row, label in zip(data, result.labels)
        )
        assert result.inertia == pytest.approx(direct)

    def test_more_clusters_never_worse_inertia(self, rng):
        data = rng.normal(size=(120, 3))
        small = kmeans(data, n_clusters=2, seed=0)
        large = kmeans(data, n_clusters=10, seed=0)
        assert large.inertia <= small.inertia + 1e-9

    def test_deterministic(self, rng):
        data = rng.normal(size=(80, 2))
        a = kmeans(data, n_clusters=3, seed=5)
        b = kmeans(data, n_clusters=3, seed=5)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.centers, b.centers)

    def test_k_equals_n(self, rng):
        data = rng.normal(size=(7, 2))
        result = kmeans(data, n_clusters=7, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)
        assert sorted(result.labels.tolist()) == list(range(7))

    def test_single_cluster(self, rng):
        data = rng.normal(size=(30, 3))
        result = kmeans(data, n_clusters=1, seed=0)
        assert np.all(result.labels == 0)
        assert np.allclose(result.centers[0], data.mean(axis=0))

    def test_duplicate_points(self):
        data = np.ones((20, 2))
        result = kmeans(data, n_clusters=3, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_no_empty_clusters(self, rng):
        data = rng.normal(size=(50, 2))
        result = kmeans(data, n_clusters=8, seed=2)
        assert set(result.labels.tolist()) == set(range(8))

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(5, 2)), n_clusters=6)
        with pytest.raises(ValueError):
            kmeans(rng.normal(size=(5, 2)), n_clusters=0)
        with pytest.raises(ValueError):
            kmeans([[np.nan, 0.0]], n_clusters=1)
        with pytest.raises(ValueError, match="2-d"):
            kmeans(np.ones(5), n_clusters=1)
