"""Tests for ORCLUS-style generalized projected clustering."""

import numpy as np
import pytest

from repro.clustering.orclus import OrclusClustering


def _oriented_clusters(rng, n_per=80, d=10, spread_dims=3):
    """Two clusters extended along different arbitrary subspaces."""
    q1, _ = np.linalg.qr(rng.normal(size=(d, d)))
    q2, _ = np.linalg.qr(rng.normal(size=(d, d)))
    a = (
        rng.normal(size=(n_per, spread_dims)) @ q1[:, :spread_dims].T * 5.0
        + rng.normal(size=(n_per, d)) * 0.1
        + 5.0
    )
    b = (
        rng.normal(size=(n_per, spread_dims)) @ q2[:, :spread_dims].T * 5.0
        + rng.normal(size=(n_per, d)) * 0.1
        - 5.0
    )
    return np.vstack([a, b])


class TestOrclusClustering:
    def test_separates_oriented_clusters(self):
        rng = np.random.default_rng(0)
        data = _oriented_clusters(rng)
        result = OrclusClustering(n_clusters=2, subspace_dims=4, seed=0).fit(data)
        first, second = result.labels[:80], result.labels[80:]
        majority_first = np.bincount(first).argmax()
        majority_second = np.bincount(second).argmax()
        assert majority_first != majority_second
        purity = (
            np.sum(first == majority_first) + np.sum(second == majority_second)
        ) / 160
        assert purity > 0.95

    def test_subspaces_are_orthonormal(self):
        rng = np.random.default_rng(1)
        data = _oriented_clusters(rng)
        result = OrclusClustering(n_clusters=2, subspace_dims=4, seed=0).fit(data)
        for basis in result.subspaces:
            assert basis.shape == (10, 4)
            assert np.allclose(basis.T @ basis, np.eye(4), atol=1e-9)

    def test_subspaces_are_tight_directions(self):
        # Members projected onto their cluster's subspace have *small*
        # variance (the subspace holds the tightest directions).
        rng = np.random.default_rng(2)
        data = _oriented_clusters(rng)
        result = OrclusClustering(n_clusters=2, subspace_dims=4, seed=0).fit(data)
        for c in range(2):
            members = data[result.labels == c]
            centered = members - members.mean(axis=0)
            inside = np.var(centered @ result.subspaces[c])
            total = np.var(centered)
            assert inside < total * 0.2

    def test_merge_schedule_ran(self):
        rng = np.random.default_rng(3)
        data = _oriented_clusters(rng)
        result = OrclusClustering(
            n_clusters=2, subspace_dims=3, initial_factor=3, seed=0
        ).fit(data)
        assert result.n_merges == 4  # 6 seeds merged down to 2
        assert result.n_clusters == 2

    def test_deterministic(self):
        rng = np.random.default_rng(4)
        data = _oriented_clusters(rng, n_per=40)
        a = OrclusClustering(n_clusters=2, subspace_dims=3, seed=7).fit(data)
        b = OrclusClustering(n_clusters=2, subspace_dims=3, seed=7).fit(data)
        assert np.array_equal(a.labels, b.labels)

    def test_single_cluster(self, rng):
        data = rng.normal(size=(50, 6))
        result = OrclusClustering(n_clusters=1, subspace_dims=2, seed=0).fit(data)
        assert np.all(result.labels == 0)
        assert result.subspaces[0].shape == (6, 2)

    def test_labels_cover_all_points(self, rng):
        data = rng.normal(size=(60, 5))
        result = OrclusClustering(n_clusters=3, subspace_dims=2, seed=1).fit(data)
        assert result.labels.shape == (60,)
        assert set(result.labels.tolist()) <= {0, 1, 2}

    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(ValueError):
            OrclusClustering(n_clusters=0, subspace_dims=1)
        with pytest.raises(ValueError):
            OrclusClustering(n_clusters=1, subspace_dims=0)
        with pytest.raises(ValueError, match="exceeds"):
            OrclusClustering(n_clusters=2, subspace_dims=9).fit(
                rng.normal(size=(30, 4))
            )
        with pytest.raises(ValueError, match="points"):
            OrclusClustering(
                n_clusters=5, subspace_dims=1, initial_factor=1
            ).fit(rng.normal(size=(3, 4)))

    def test_beats_axis_parallel_on_oriented_data(self):
        # The reason ORCLUS exists: PROCLUS's axis-parallel subspaces
        # cannot describe arbitrarily oriented clusters.
        from repro.clustering.projected import ProjectedClustering

        rng = np.random.default_rng(5)
        data = _oriented_clusters(rng)
        truth = np.array([0] * 80 + [1] * 80)

        def purity(labels):
            total = 0
            for c in np.unique(labels):
                members = truth[labels == c]
                if members.size:
                    total += np.bincount(members).max()
            return total / truth.size

        orclus = OrclusClustering(n_clusters=2, subspace_dims=4, seed=0).fit(data)
        proclus = ProjectedClustering(n_clusters=2, n_dims=4, seed=0).fit(data)
        assert purity(orclus.labels) >= purity(proclus.labels)
