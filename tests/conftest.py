"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Dataset, ionosphere_like, latent_concept_dataset


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset() -> Dataset:
    """A small, fast latent-concept dataset for integration-ish tests."""
    return latent_concept_dataset(
        n_samples=120,
        n_dims=20,
        n_concepts=4,
        n_classes=2,
        clusters_per_class=2,
        class_separation=6.0,
        concept_std=1.0,
        noise_std=1.0,
        seed=42,
        name="small",
    )


@pytest.fixture(scope="session")
def ionosphere() -> Dataset:
    """The ionosphere-like preset (session-cached: generation is cheap but
    the dataset is used by many tests)."""
    return ionosphere_like(seed=0)


@pytest.fixture(scope="session")
def random_points(rng) -> np.ndarray:
    """A generic unlabeled point cloud for index and metric tests."""
    return rng.normal(size=(200, 5))
