"""Tests for repro.distances.contrast — the Beyer et al. diagnostics."""

import numpy as np
import pytest

from repro.distances.contrast import (
    relative_contrast,
    relative_contrast_profile,
)


class TestRelativeContrast:
    def test_known_values(self):
        corpus = np.array([[1.0], [3.0]])
        summary = relative_contrast(corpus, np.array([0.0]))
        assert summary.nearest == 1.0
        assert summary.farthest == 3.0
        assert summary.relative_contrast == pytest.approx(2.0)
        assert summary.mean_distance == pytest.approx(2.0)

    def test_query_on_corpus_point_raises(self):
        corpus = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError, match="coincides"):
            relative_contrast(corpus, np.array([0.0, 0.0]))

    def test_metric_forwarding(self):
        corpus = np.array([[3.0, 4.0], [6.0, 8.0]])
        summary = relative_contrast(corpus, np.array([0.0, 0.0]), metric="manhattan")
        assert summary.nearest == 7.0
        assert summary.farthest == 14.0

    def test_rejects_bad_query_shape(self):
        with pytest.raises(ValueError, match="query"):
            relative_contrast(np.ones((3, 2)), np.ones(3))

    def test_contrast_nonnegative(self, rng):
        corpus = rng.normal(size=(50, 4))
        summary = relative_contrast(corpus, rng.normal(size=4) + 10.0)
        assert summary.relative_contrast >= 0.0
        assert summary.farthest >= summary.nearest


class TestRelativeContrastProfile:
    def test_contrast_decreases_with_dimensionality(self):
        # The core phenomenon of Section 1.1: uniform-data contrast
        # collapses as dimensionality rises.
        profile = relative_contrast_profile(
            [2, 10, 50, 200], n_points=200, n_queries=10, seed=0
        )
        contrasts = [c for _, c in profile]
        assert contrasts[0] > contrasts[1] > contrasts[2] > contrasts[3]

    def test_high_dim_contrast_is_small(self):
        profile = relative_contrast_profile([500], n_points=200, n_queries=5, seed=1)
        assert profile[0][1] < 0.3

    def test_preserves_input_order(self):
        profile = relative_contrast_profile([30, 3], n_points=50, n_queries=3)
        assert [d for d, _ in profile] == [30, 3]

    def test_deterministic_given_seed(self):
        a = relative_contrast_profile([5], n_points=50, n_queries=3, seed=7)
        b = relative_contrast_profile([5], n_points=50, n_queries=3, seed=7)
        assert a == b

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            relative_contrast_profile([0])
        with pytest.raises(ValueError):
            relative_contrast_profile([])
