"""Tests for repro.distances.metrics."""

import numpy as np
import pytest

from repro.distances.metrics import (
    chebyshev,
    cosine_distance,
    euclidean,
    manhattan,
    minkowski,
    pairwise_distances,
    squared_euclidean_matrix,
)


class TestPointMetrics:
    def test_euclidean_345(self):
        assert euclidean([0.0, 0.0], [3.0, 4.0]) == 5.0

    def test_manhattan(self):
        assert manhattan([0.0, 0.0], [3.0, 4.0]) == 7.0

    def test_chebyshev(self):
        assert chebyshev([0.0, 0.0], [3.0, 4.0]) == 4.0

    def test_minkowski_reduces_to_euclidean(self):
        a, b = [1.0, 2.0, 3.0], [4.0, 0.0, 3.0]
        assert minkowski(a, b, p=2) == pytest.approx(euclidean(a, b))

    def test_minkowski_reduces_to_manhattan(self):
        a, b = [1.0, 2.0], [0.0, -1.0]
        assert minkowski(a, b, p=1) == pytest.approx(manhattan(a, b))

    def test_fractional_minkowski(self):
        # p = 0.5: (|1|^0.5 + |1|^0.5)^2 = 4.
        assert minkowski([0.0, 0.0], [1.0, 1.0], p=0.5) == pytest.approx(4.0)

    def test_minkowski_rejects_nonpositive_p(self):
        with pytest.raises(ValueError, match="positive"):
            minkowski([0.0], [1.0], p=0.0)

    def test_identity_of_indiscernibles(self):
        point = [1.5, -2.5, 0.0]
        for metric in (euclidean, manhattan, chebyshev):
            assert metric(point, point) == 0.0

    def test_symmetry(self, rng):
        a, b = rng.normal(size=4), rng.normal(size=4)
        for metric in (euclidean, manhattan, chebyshev):
            assert metric(a, b) == pytest.approx(metric(b, a))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            euclidean([1.0], [1.0, 2.0])

    def test_nan_raises(self):
        with pytest.raises(ValueError, match="finite"):
            euclidean([float("nan")], [1.0])

    def test_2d_input_raises(self):
        with pytest.raises(ValueError, match="1-d"):
            euclidean([[1.0]], [[2.0]])


class TestCosineDistance:
    def test_parallel_vectors(self):
        assert cosine_distance([1.0, 0.0], [5.0, 0.0]) == pytest.approx(0.0)

    def test_orthogonal_vectors(self):
        assert cosine_distance([1.0, 0.0], [0.0, 2.0]) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        assert cosine_distance([1.0, 1.0], [-2.0, -2.0]) == pytest.approx(2.0)

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError, match="zero"):
            cosine_distance([0.0, 0.0], [1.0, 0.0])

    def test_scale_invariance(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        assert cosine_distance(a, b) == pytest.approx(
            cosine_distance(a * 3.0, b * 0.1)
        )


class TestSquaredEuclideanMatrix:
    def test_matches_direct_computation(self, rng):
        x = rng.normal(size=(8, 3))
        matrix = squared_euclidean_matrix(x)
        for i in range(8):
            for j in range(8):
                direct = float(np.sum(np.square(x[i] - x[j])))
                assert matrix[i, j] == pytest.approx(direct, abs=1e-9)

    def test_zero_diagonal(self, rng):
        matrix = squared_euclidean_matrix(rng.normal(size=(10, 4)))
        assert np.allclose(np.diag(matrix), 0.0, atol=1e-9)

    def test_never_negative(self, rng):
        # The Gram identity can produce tiny negatives; they are clamped.
        x = rng.normal(size=(50, 6)) * 1e6
        assert np.all(squared_euclidean_matrix(x) >= 0.0)

    def test_two_matrices(self, rng):
        x = rng.normal(size=(4, 3))
        y = rng.normal(size=(6, 3))
        matrix = squared_euclidean_matrix(x, y)
        assert matrix.shape == (4, 6)
        assert matrix[1, 2] == pytest.approx(
            float(np.sum(np.square(x[1] - y[2])))
        )

    def test_rejects_column_mismatch(self, rng):
        with pytest.raises(ValueError):
            squared_euclidean_matrix(rng.normal(size=(3, 2)), rng.normal(size=(3, 4)))


class TestPairwiseDistances:
    @pytest.mark.parametrize("metric", ["euclidean", "manhattan", "chebyshev"])
    def test_matches_point_metric(self, rng, metric):
        from repro.distances import metrics as m

        point_metric = {"euclidean": m.euclidean, "manhattan": m.manhattan,
                        "chebyshev": m.chebyshev}[metric]
        x = rng.normal(size=(5, 4))
        matrix = pairwise_distances(x, metric=metric)
        for i in range(5):
            for j in range(5):
                # The Gram-identity kernel loses ~half the mantissa, so
                # distances match to ~1e-7 only.
                assert matrix[i, j] == pytest.approx(
                    point_metric(x[i], x[j]), abs=1e-7
                )

    def test_minkowski_requires_p(self, rng):
        with pytest.raises(ValueError, match="requires"):
            pairwise_distances(rng.normal(size=(3, 2)), metric="minkowski")

    def test_minkowski_matches_point_metric(self, rng):
        x = rng.normal(size=(4, 3))
        matrix = pairwise_distances(x, metric="minkowski", p=3.0)
        assert matrix[0, 1] == pytest.approx(minkowski(x[0], x[1], p=3.0))

    def test_cosine(self, rng):
        x = rng.normal(size=(4, 3)) + 5.0
        matrix = pairwise_distances(x, metric="cosine")
        assert matrix[2, 3] == pytest.approx(cosine_distance(x[2], x[3]))
        assert np.allclose(np.diag(matrix), 0.0, atol=1e-12)

    def test_cross_matrices(self, rng):
        x, y = rng.normal(size=(3, 4)), rng.normal(size=(5, 4))
        matrix = pairwise_distances(x, y, metric="euclidean")
        assert matrix.shape == (3, 5)

    def test_unknown_metric(self, rng):
        with pytest.raises(ValueError, match="unknown metric"):
            pairwise_distances(rng.normal(size=(3, 2)), metric="hamming")

    def test_symmetry(self, rng):
        matrix = pairwise_distances(rng.normal(size=(6, 3)))
        assert np.allclose(matrix, matrix.T)
