"""Tests for the baseline reducers (random projection and SVD)."""

import numpy as np
import pytest

from repro.baselines.random_projection import RandomProjectionReducer
from repro.baselines.svd_reduction import SVDReducer
from repro.core.reducer import CoherenceReducer


class TestRandomProjectionReducer:
    def test_output_shape(self, rng):
        data = rng.normal(size=(50, 20))
        reduced = RandomProjectionReducer(n_components=5, seed=0).fit_transform(data)
        assert reduced.shape == (50, 5)

    def test_deterministic_given_seed(self, rng):
        data = rng.normal(size=(30, 10))
        a = RandomProjectionReducer(4, seed=7).fit_transform(data)
        b = RandomProjectionReducer(4, seed=7).fit_transform(data)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, rng):
        data = rng.normal(size=(30, 10))
        a = RandomProjectionReducer(4, seed=1).fit_transform(data)
        b = RandomProjectionReducer(4, seed=2).fit_transform(data)
        assert not np.allclose(a, b)

    def test_jl_distance_preservation(self, rng):
        # With a healthy component budget, pairwise distances survive
        # within a modest distortion — the JL guarantee, loosely checked.
        data = rng.normal(size=(40, 200))
        reduced = RandomProjectionReducer(n_components=100, seed=0).fit_transform(data)
        original = np.linalg.norm(data[0] - data[1])
        projected = np.linalg.norm(reduced[0] - reduced[1])
        assert abs(projected - original) / original < 0.5

    def test_sparse_kind(self, rng):
        data = rng.normal(size=(30, 12))
        reducer = RandomProjectionReducer(4, kind="sparse", seed=0).fit(data)
        values = np.unique(np.abs(reducer.components_))
        # Achlioptas entries are 0 or ±sqrt(3/k).
        assert set(np.round(values, 10)) <= {0.0, round(np.sqrt(3 / 4), 10)}

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RandomProjectionReducer(2).transform(np.zeros((3, 5)))

    def test_rejects_too_many_components(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            RandomProjectionReducer(11).fit(rng.normal(size=(5, 10)))

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            RandomProjectionReducer(2, kind="hash")

    def test_transform_single_vector(self, rng):
        data = rng.normal(size=(20, 6))
        reducer = RandomProjectionReducer(3, seed=0).fit(data)
        assert reducer.transform(data[0]).shape == (3,)


class TestSVDReducer:
    def test_centered_matches_pca(self, rng):
        # Centered SVD truncation == eigenvalue-ordered PCA, up to signs.
        data = rng.normal(size=(60, 8)) @ np.diag(np.arange(8, 0, -1.0))
        svd_reduced = SVDReducer(n_components=3).fit_transform(data)
        pca_reduced = CoherenceReducer(
            n_components=3, ordering="eigenvalue"
        ).fit_transform(data)
        # Compare pairwise distances (invariant to the sign ambiguity).
        from repro.distances.metrics import squared_euclidean_matrix

        assert np.allclose(
            squared_euclidean_matrix(svd_reduced),
            squared_euclidean_matrix(pca_reduced),
            atol=1e-8,
        )

    def test_uncentered_mode(self, rng):
        data = np.abs(rng.normal(size=(20, 6))) + 5.0
        reducer = SVDReducer(n_components=2, center=False).fit(data)
        assert np.allclose(reducer.mean_, 0.0)

    def test_power_method_agrees_with_exact(self, rng):
        data = rng.normal(size=(50, 10)) @ np.diag(np.linspace(4, 0.2, 10))
        exact = SVDReducer(n_components=3, method="exact").fit(data)
        power = SVDReducer(n_components=3, method="power").fit(data)
        assert np.allclose(
            exact.svd_.singular_values, power.svd_.singular_values, rtol=1e-6
        )

    def test_explained_energy_monotone_in_k(self, rng):
        data = rng.normal(size=(40, 8))
        small = SVDReducer(n_components=2).fit(data)
        large = SVDReducer(n_components=6).fit(data)
        assert large.explained_energy() >= small.explained_energy()
        assert 0.0 <= small.explained_energy() <= 1.0

    def test_transform_new_rows(self, rng):
        data = rng.normal(size=(30, 5))
        reducer = SVDReducer(n_components=2).fit(data)
        out = reducer.transform(data[:4] + 0.1)
        assert out.shape == (4, 2)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            SVDReducer(2).transform(np.zeros((3, 5)))

    def test_rejects_excess_components(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            SVDReducer(6).fit(rng.normal(size=(4, 10)))

    def test_rejects_bad_method(self):
        with pytest.raises(ValueError, match="method"):
            SVDReducer(2, method="qr")


class TestBaselineQualityOrdering:
    def test_coherence_beats_baselines_on_noisy_data(self):
        # The comparison the benches run, in miniature: on corrupted data
        # the coherence reducer beats both baselines at equal budget.
        from repro.datasets.uci_like import noisy_dataset_a
        from repro.evaluation.feature_stripping import feature_stripping_accuracy

        noisy = noisy_dataset_a(seed=0)
        budget = 4
        scores = {}
        for name, reducer in (
            ("coherence", CoherenceReducer(n_components=budget, ordering="coherence")),
            ("svd", SVDReducer(n_components=budget)),
            ("random", RandomProjectionReducer(n_components=budget, seed=0)),
        ):
            reduced = reducer.fit_transform(noisy.features)
            scores[name] = feature_stripping_accuracy(reduced, noisy.labels)
        assert scores["coherence"] > scores["svd"] + 0.1
        assert scores["coherence"] > scores["random"] + 0.1
