"""Tests for the implicit-dimensionality estimators."""

import numpy as np
import pytest

from repro.theory.implicit_dim import (
    correlation_dimension,
    dimension_at_energy,
    entropy_dimension,
    participation_ratio,
)


class TestParticipationRatio:
    def test_flat_spectrum_equals_d(self):
        assert participation_ratio(np.ones(17)) == pytest.approx(17.0)

    def test_single_spike_is_one(self):
        assert participation_ratio([5.0, 0.0, 0.0]) == pytest.approx(1.0)

    def test_k_equal_spikes(self):
        spectrum = [2.0, 2.0, 2.0, 0.0, 0.0, 0.0]
        assert participation_ratio(spectrum) == pytest.approx(3.0)

    def test_scale_invariance(self):
        spectrum = np.array([4.0, 2.0, 1.0])
        assert participation_ratio(spectrum) == pytest.approx(
            participation_ratio(spectrum * 100)
        )

    def test_rejects_zero_spectrum(self):
        with pytest.raises(ValueError):
            participation_ratio(np.zeros(3))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            participation_ratio([1.0, -2.0])


class TestEntropyDimension:
    def test_flat_spectrum_equals_d(self):
        assert entropy_dimension(np.ones(9)) == pytest.approx(9.0)

    def test_single_spike_is_one(self):
        assert entropy_dimension([1.0, 0.0]) == pytest.approx(1.0)

    def test_between_one_and_d(self):
        spectrum = [5.0, 3.0, 1.0, 0.1]
        value = entropy_dimension(spectrum)
        assert 1.0 <= value <= 4.0

    def test_scale_invariance(self):
        spectrum = np.array([3.0, 2.0, 1.0])
        assert entropy_dimension(spectrum) == pytest.approx(
            entropy_dimension(spectrum * 7)
        )


class TestDimensionAtEnergy:
    def test_simple(self):
        assert dimension_at_energy([4.0, 3.0, 2.0, 1.0], 0.5) == 2

    def test_unsorted_input(self):
        assert dimension_at_energy([1.0, 4.0, 3.0, 2.0], 0.5) == 2

    def test_full_energy(self):
        assert dimension_at_energy([1.0, 1.0], 1.0) == 2

    def test_tiny_energy_keeps_one(self):
        assert dimension_at_energy([4.0, 3.0], 0.01) == 1

    def test_rejects_bad_energy(self):
        with pytest.raises(ValueError):
            dimension_at_energy([1.0], 0.0)


class TestCorrelationDimension:
    def test_line_in_high_dim(self, rng):
        t = rng.uniform(size=(400, 1))
        direction = rng.normal(size=(1, 10))
        points = t @ direction + 1e-4 * rng.normal(size=(400, 10))
        estimate = correlation_dimension(points, seed=0)
        assert 0.5 < estimate < 1.6

    def test_plane_in_high_dim(self, rng):
        coordinates = rng.uniform(size=(500, 2))
        embedding = rng.normal(size=(2, 12))
        points = coordinates @ embedding
        estimate = correlation_dimension(points, seed=0)
        assert 1.4 < estimate < 2.8

    def test_full_dimensional_cube(self, rng):
        points = rng.uniform(size=(500, 3))
        estimate = correlation_dimension(points, seed=0)
        assert 2.0 < estimate < 4.0

    def test_subsampling_respects_cap(self, rng):
        points = rng.uniform(size=(2000, 4))
        estimate = correlation_dimension(points, max_points=100, seed=1)
        assert estimate > 0.0

    def test_rejects_tiny_input(self, rng):
        with pytest.raises(ValueError, match="10 rows"):
            correlation_dimension(rng.normal(size=(5, 2)))

    def test_rejects_all_duplicates(self):
        with pytest.raises(ValueError):
            correlation_dimension(np.ones((50, 3)))
