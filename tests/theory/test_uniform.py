"""Tests for the Section-3 closed-form results."""

import numpy as np
import pytest

from repro.theory.uniform import (
    empirical_uniform_coherence,
    uniform_coherence_factor,
    uniform_coherence_probability,
)


class TestClosedForm:
    def test_factor_is_one(self):
        # Equation 4.
        assert uniform_coherence_factor() == 1.0

    def test_probability_value(self):
        # Equation 5: 2 Phi(1) - 1.
        assert uniform_coherence_probability() == pytest.approx(
            0.6826894921370859, abs=1e-12
        )


class TestEmpiricalUniformCoherence:
    def test_matches_closed_form_exactly(self):
        # The derivation is coordinate-free: every point with a nonzero
        # coordinate contributes CF exactly 1, so the empirical value
        # equals the prediction at machine precision.
        result = empirical_uniform_coherence(n_samples=500, n_dims=25, seed=0)
        assert result["mean_probability"] == pytest.approx(
            result["predicted_probability"], abs=1e-12
        )

    def test_every_axis_equal(self):
        result = empirical_uniform_coherence(n_samples=300, n_dims=15, seed=1)
        assert result["probability_spread"] == pytest.approx(0.0, abs=1e-12)

    def test_independent_of_dimensionality(self):
        low = empirical_uniform_coherence(n_samples=200, n_dims=5, seed=2)
        high = empirical_uniform_coherence(n_samples=200, n_dims=80, seed=2)
        assert low["mean_probability"] == pytest.approx(
            high["mean_probability"], abs=1e-12
        )

    def test_factors_are_all_one(self):
        result = empirical_uniform_coherence(n_samples=100, n_dims=10, seed=3)
        assert np.allclose(result["coherence_factors"], 1.0)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            empirical_uniform_coherence(n_samples=1)
        with pytest.raises(ValueError):
            empirical_uniform_coherence(n_dims=0)

    def test_no_direction_can_be_called_a_concept(self):
        # The operational consequence Section 3 draws: on uniform data
        # the reducibility diagnosis must refuse to prune anything.
        from repro.core.diagnosis import diagnose_reducibility
        from repro.datasets.synthetic import uniform_cube

        data = uniform_cube(600, 30, seed=4)
        assert diagnose_reducibility(data.features).verdict == "noisy"
