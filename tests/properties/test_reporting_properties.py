"""Property-based tests for the text reporting helpers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.reporting import format_series, format_table, render_ascii_chart

_CELL = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        max_size=12,
    ),
)


@st.composite
def tables(draw):
    n_columns = draw(st.integers(1, 5))
    headers = [f"col{i}" for i in range(n_columns)]
    n_rows = draw(st.integers(0, 8))
    rows = [
        [draw(_CELL) for _ in range(n_columns)] for _ in range(n_rows)
    ]
    return headers, rows


class TestFormatTableProperties:
    @given(tables())
    @settings(max_examples=150, deadline=None)
    def test_all_lines_equal_width(self, case):
        headers, rows = case
        text = format_table(headers, rows)
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1

    @given(tables())
    @settings(max_examples=150, deadline=None)
    def test_line_count(self, case):
        headers, rows = case
        text = format_table(headers, rows)
        assert len(text.splitlines()) == 2 + len(rows)

    @given(tables())
    @settings(max_examples=100, deadline=None)
    def test_every_header_appears(self, case):
        headers, rows = case
        text = format_table(headers, rows)
        first_line = text.splitlines()[0]
        for header in headers:
            assert header in first_line


@st.composite
def chart_series(draw):
    n = draw(st.integers(1, 30))
    xs = sorted(
        draw(
            st.lists(
                st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    n_series = draw(st.integers(1, 3))
    series = {
        f"s{i}": draw(
            st.lists(
                st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
        for i in range(n_series)
    }
    return xs, series


class TestChartProperties:
    @given(chart_series())
    @settings(max_examples=100, deadline=None)
    def test_chart_never_crashes_and_mentions_every_series(self, case):
        xs, series = case
        text = render_ascii_chart(xs, series, height=8, width=40)
        for name in series:
            assert f"= {name}" in text

    @given(chart_series())
    @settings(max_examples=100, deadline=None)
    def test_series_table_alignment(self, case):
        xs, series = case
        text = format_series(xs, {k: list(v) for k, v in series.items()})
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1
        assert len(lines) == 2 + len(xs)
