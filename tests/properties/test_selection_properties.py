"""Property-based tests for the selection strategies."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.selection import (
    select_automatic,
    select_by_coherence,
    select_by_eigenvalue,
    select_by_energy,
    select_by_threshold,
)


@st.composite
def spectra(draw, max_d=20):
    d = draw(st.integers(1, max_d))
    values = draw(
        arrays(
            np.float64,
            (d,),
            elements=st.floats(min_value=0, max_value=1000, allow_nan=False),
        )
    )
    return np.sort(values)[::-1]


@st.composite
def probability_vectors(draw, max_d=20):
    d = draw(st.integers(1, max_d))
    return draw(
        arrays(
            np.float64,
            (d,),
            elements=st.floats(min_value=0, max_value=1, allow_nan=False),
        )
    )


class TestSelectionProperties:
    @given(spectra(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_eigenvalue_selection_is_a_prefix(self, values, data):
        k = data.draw(st.integers(1, values.size))
        selected = select_by_eigenvalue(values, k)
        assert list(selected) == list(range(k))

    @given(probability_vectors(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_coherence_selection_sorted_and_unique(self, cp, data):
        k = data.draw(st.integers(1, cp.size))
        selected = select_by_coherence(cp, k)
        assert len(set(selected.tolist())) == k
        chosen = cp[selected]
        assert np.all(np.diff(chosen) <= 1e-12)
        # Nothing unselected beats anything selected.
        unselected = np.setdiff1d(np.arange(cp.size), selected)
        if unselected.size:
            assert cp[unselected].max() <= chosen.min() + 1e-12

    @given(spectra(), st.floats(min_value=0, max_value=1, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_threshold_keeps_exactly_the_qualifying_prefix(self, values, fraction):
        selected = select_by_threshold(values, fraction)
        cutoff = fraction * values[0]
        expected = max(1, int(np.sum(values >= cutoff)))
        assert selected.size == expected

    @given(spectra(), st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_energy_selection_is_minimal_sufficient(self, values, energy):
        selected = select_by_energy(values, energy)
        total = values.sum()
        if total == 0.0:
            assert selected.size == 1
            return
        kept = values[: selected.size].sum()
        assert kept / total >= energy - 1e-9
        if selected.size > 1:
            smaller = values[: selected.size - 1].sum()
            assert smaller / total < energy + 1e-9

    @given(probability_vectors())
    @settings(max_examples=150, deadline=None)
    def test_automatic_selection_never_splits_a_tie(self, cp):
        selected = select_automatic(cp)
        chosen = set(selected.tolist())
        for i in range(cp.size):
            for j in range(cp.size):
                if cp[i] == cp[j]:
                    assert (i in chosen) == (j in chosen)

    @given(probability_vectors())
    @settings(max_examples=150, deadline=None)
    def test_automatic_selection_takes_the_top(self, cp):
        selected = select_automatic(cp)
        chosen = cp[selected]
        unselected = np.setdiff1d(np.arange(cp.size), selected)
        if unselected.size:
            assert cp[unselected].max() < chosen.min()
