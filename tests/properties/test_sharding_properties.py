"""Property: sharded answers are bit-identical to the unsharded index.

For every index kind, both partition methods, and multiple shard
counts, the scatter-gather merge must reproduce exactly what the
unsharded index answers — same neighbor indices, same distance bytes,
same tie ordering.  The corpus contains duplicated rows and the query
stream includes corpus points, so zero-distance and equal-distance ties
are genuinely exercised (ties are where a sloppy merge diverges first).

Stats equality is asserted for the scan-everything index (bruteforce:
per-shard scans sum to exactly the corpus size); the pruning indexes'
per-shard tree shapes legitimately differ from the single big tree, so
their summed stats describe the sharded execution, not the unsharded
one, and only the answers are compared.  The projection-screened index
sits in between: every shard screens with the one projection fitted on
the full corpus (the shared-structure rule in ``build_shards``), so its
``reduced_rows_scanned`` sums to exactly the corpus size per query, but
each shard seeds its own k refinements, so ``points_scanned`` describes
the sharded execution.
"""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.idistance import IDistanceIndex
from repro.search.igrid import IGridIndex
from repro.search.kdtree import KdTreeIndex
from repro.search.lsh import LshIndex
from repro.search.projected import ProjectionScreenedIndex
from repro.search.pyramid import PyramidIndex
from repro.search.rtree import RTreeIndex
from repro.search.vafile import VAFileIndex
from repro.serve import BatchPolicy
from repro.shard import ShardedIndexServer, build_shards

ALL_INDEXES = [
    BruteForceIndex,
    KdTreeIndex,
    RTreeIndex,
    VAFileIndex,
    PyramidIndex,
    IDistanceIndex,
    IGridIndex,
    LshIndex,
    ProjectionScreenedIndex,
]

_KINDS = {
    BruteForceIndex: "bruteforce",
    KdTreeIndex: "kdtree",
    RTreeIndex: "rtree",
    VAFileIndex: "vafile",
    PyramidIndex: "pyramid",
    IDistanceIndex: "idistance",
    IGridIndex: "igrid",
    LshIndex: "lsh",
    ProjectionScreenedIndex: "projscreen",
}

# A small max_batch forces multiple member flushes per stream.
_POLICY = BatchPolicy(max_batch=4, max_wait_ms=1.0)


def _tie_heavy_corpus(rng):
    corpus = rng.normal(size=(90, 5))
    # Duplicated rows make exact zero- and equal-distance ties across
    # shard boundaries, whatever the partition.
    corpus[30] = corpus[7]
    corpus[61] = corpus[7]
    corpus[45] = corpus[12]
    return corpus


@pytest.mark.parametrize("cls", ALL_INDEXES)
@pytest.mark.parametrize("method", ["round-robin", "projected"])
def test_sharded_serving_is_bit_identical(cls, method, tmp_path, rng):
    corpus = _tie_heavy_corpus(rng)
    index = cls(corpus)

    # Fresh queries plus corpus points (the duplicated ones included),
    # each with its own k.
    fresh = rng.normal(size=(12, 5))
    stream = [(row, int(k)) for row, k in zip(fresh, rng.integers(1, 8, 12))]
    stream += [(corpus[i], 5) for i in (7, 30, 12, 0, 89)]

    for n_shards in (2, 3):
        manifest = build_shards(
            corpus,
            str(tmp_path / f"{method}-{n_shards}"),
            n_shards,
            kind=_KINDS[cls],
            method=method,
            seed=1,
        )
        with ShardedIndexServer(
            manifest, n_workers=0, policy=_POLICY
        ) as server:
            futures = [server.submit(q, k=k) for q, k in stream]
            for (query, k), future in zip(stream, futures):
                expected = index.query(query, k=k)
                got = future.result(timeout=30)
                context = (
                    f"{cls.__name__} diverged at k={k} "
                    f"({method}, {n_shards} shards)"
                )
                assert got.indices.tolist() == (
                    expected.indices.tolist()
                ), context
                assert got.distances.tolist() == (
                    expected.distances.tolist()
                ), context
                if cls is BruteForceIndex:
                    assert got.stats == expected.stats, context
                if cls is ProjectionScreenedIndex:
                    # Shards share one full-corpus projection, so the
                    # summed reduced scans cover the corpus exactly once.
                    assert (
                        got.stats.reduced_rows_scanned
                        == expected.stats.reduced_rows_scanned
                    ), context
            # The explicit-batch path merges identically too.  Rows are
            # compared individually: an approximate index may return
            # fewer than k neighbors for some rows (ragged batches).
            batch = server.query_batch(fresh, k=4)
            expected_batch = index.query_batch(fresh, k=4)
            assert len(batch) == len(expected_batch)
            for got_row, want_row in zip(batch, expected_batch):
                assert got_row.indices.tolist() == want_row.indices.tolist()
                assert (
                    got_row.distances.tolist() == want_row.distances.tolist()
                )
            if cls is BruteForceIndex:
                assert batch.stats == expected_batch.stats


@pytest.mark.parametrize(
    "kind, index_kwargs, build",
    [
        ("lsh", {"n_probes": 4},
         lambda pts: LshIndex(pts, n_probes=4)),
        ("vafile", {"bit_allocation": "variance"},
         lambda pts: VAFileIndex(pts, bit_allocation="variance")),
    ],
)
def test_sharded_new_knobs_stay_bit_identical(
    kind, index_kwargs, build, tmp_path, rng
):
    # build_shards must hand the new constructor knobs to every shard;
    # the scatter-gather merge over fused-gemm shard refinements must
    # still reproduce the unsharded index exactly.
    corpus = _tie_heavy_corpus(rng)
    index = build(corpus)
    queries = [(row, 4) for row in rng.normal(size=(10, 5))]
    queries += [(corpus[i], 5) for i in (7, 30, 12)]
    manifest = build_shards(
        corpus,
        str(tmp_path / kind),
        3,
        kind=kind,
        method="round-robin",
        seed=1,
        index_kwargs=index_kwargs,
    )
    with ShardedIndexServer(manifest, n_workers=0, policy=_POLICY) as server:
        futures = [server.submit(q, k=k) for q, k in queries]
        for (query, k), future in zip(queries, futures):
            expected = index.query(query, k=k)
            got = future.result(timeout=30)
            context = f"sharded {kind} with {index_kwargs} diverged at k={k}"
            assert got.indices.tolist() == expected.indices.tolist(), context
            assert got.distances.tolist() == (
                expected.distances.tolist()
            ), context
