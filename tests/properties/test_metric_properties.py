"""Property-based tests for metric axioms and index agreement."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.distances.metrics import (
    chebyshev,
    euclidean,
    manhattan,
    minkowski,
    squared_euclidean_matrix,
)
from repro.search.bruteforce import BruteForceIndex
from repro.search.kdtree import KdTreeIndex
from repro.search.rtree import RTreeIndex
from repro.search.vafile import VAFileIndex

_COORD = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


def _vectors(d):
    return arrays(np.float64, (d,), elements=_COORD)


@st.composite
def vector_triples(draw):
    d = draw(st.integers(1, 8))
    return (
        draw(_vectors(d)),
        draw(_vectors(d)),
        draw(_vectors(d)),
    )


_METRICS = [euclidean, manhattan, chebyshev]


class TestMetricAxioms:
    @given(vector_triples())
    @settings(max_examples=200, deadline=None)
    def test_non_negativity_and_symmetry(self, triple):
        a, b, _ = triple
        for metric in _METRICS:
            assert metric(a, b) >= 0.0
            assert abs(metric(a, b) - metric(b, a)) < 1e-9

    @given(vector_triples())
    @settings(max_examples=200, deadline=None)
    def test_identity(self, triple):
        a, _, _ = triple
        for metric in _METRICS:
            assert metric(a, a) == 0.0

    @given(vector_triples())
    @settings(max_examples=200, deadline=None)
    def test_triangle_inequality(self, triple):
        a, b, c = triple
        for metric in _METRICS:
            direct = metric(a, c)
            detour = metric(a, b) + metric(b, c)
            assert direct <= detour + 1e-6 * max(1.0, detour)

    @given(vector_triples(), st.floats(min_value=1.0, max_value=8.0))
    @settings(max_examples=100, deadline=None)
    def test_minkowski_triangle_for_p_at_least_one(self, triple, p):
        a, b, c = triple
        direct = minkowski(a, c, p)
        detour = minkowski(a, b, p) + minkowski(b, c, p)
        assert direct <= detour + 1e-6 * max(1.0, detour)

    @given(vector_triples())
    @settings(max_examples=100, deadline=None)
    def test_metric_ordering(self, triple):
        # chebyshev <= euclidean <= manhattan for any pair.
        a, b, _ = triple
        tolerance = 1e-9 * max(1.0, manhattan(a, b))
        assert chebyshev(a, b) <= euclidean(a, b) + tolerance
        assert euclidean(a, b) <= manhattan(a, b) + tolerance


@st.composite
def corpora_and_queries(draw):
    n = draw(st.integers(2, 40))
    d = draw(st.integers(1, 5))
    corpus = draw(
        arrays(
            np.float64,
            (n, d),
            elements=st.floats(
                min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
            ),
        )
    )
    query = draw(
        arrays(
            np.float64,
            (d,),
            elements=st.floats(
                min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
            ),
        )
    )
    k = draw(st.integers(1, n))
    return corpus, query, k


class TestIndexAgreement:
    """Every index must return exactly the brute-force answer.

    Arbitrary corpora include duplicates, collinear points, and exact
    ties — the cases where tree pruning with `<` instead of `<=` or a
    sloppy tie-break silently diverges.
    """

    @given(corpora_and_queries())
    @settings(max_examples=100, deadline=None)
    def test_kdtree(self, case):
        corpus, query, k = case
        expected = BruteForceIndex(corpus).query(query, k)
        actual = KdTreeIndex(corpus, leaf_size=4).query(query, k)
        assert np.array_equal(actual.indices, expected.indices)

    @given(corpora_and_queries())
    @settings(max_examples=100, deadline=None)
    def test_rtree(self, case):
        corpus, query, k = case
        expected = BruteForceIndex(corpus).query(query, k)
        actual = RTreeIndex(corpus, page_size=4).query(query, k)
        assert np.array_equal(actual.indices, expected.indices)

    @given(corpora_and_queries())
    @settings(max_examples=100, deadline=None)
    def test_vafile(self, case):
        corpus, query, k = case
        expected = BruteForceIndex(corpus).query(query, k)
        actual = VAFileIndex(corpus, bits_per_dim=3).query(query, k)
        assert np.array_equal(actual.indices, expected.indices)


class TestSquaredMatrixProperties:
    @given(corpora_and_queries())
    @settings(max_examples=100, deadline=None)
    def test_consistent_with_euclidean(self, case):
        corpus, _, _ = case
        matrix = squared_euclidean_matrix(corpus)
        n = corpus.shape[0]
        i, j = 0, n - 1
        direct = euclidean(corpus[i], corpus[j]) ** 2
        assert abs(matrix[i, j] - direct) < 1e-6 * max(1.0, direct)
