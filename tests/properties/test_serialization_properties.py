"""Property-based tests for reducer serialization.

Any fitted configuration must survive a save/load roundtrip with a
bit-identical transform — across orderings, budgets, scaling, and
whitening.
"""

import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reducer import CoherenceReducer
from repro.core.serialization import load_reducer, save_reducer
from repro.datasets.synthetic import latent_concept_dataset

_DATASET = latent_concept_dataset(60, 10, 3, seed=7)


@st.composite
def reducer_configs(draw):
    ordering = draw(st.sampled_from(["eigenvalue", "coherence", "automatic"]))
    scale = draw(st.booleans())
    whiten = draw(st.booleans())
    if ordering == "automatic":
        return CoherenceReducer(ordering=ordering, scale=scale, whiten=whiten)
    budget_kind = draw(st.sampled_from(["n", "threshold", "energy", "none"]))
    if budget_kind == "n":
        return CoherenceReducer(
            n_components=draw(st.integers(1, 10)),
            ordering=ordering, scale=scale, whiten=whiten,
        )
    if budget_kind == "threshold":
        return CoherenceReducer(
            threshold=draw(st.floats(min_value=0.0, max_value=0.5)),
            ordering=ordering, scale=scale, whiten=whiten,
        )
    if budget_kind == "energy":
        return CoherenceReducer(
            energy=draw(st.floats(min_value=0.1, max_value=1.0)),
            ordering=ordering, scale=scale, whiten=whiten,
        )
    return CoherenceReducer(ordering=ordering, scale=scale, whiten=whiten)


class TestSerializationProperties:
    @given(reducer_configs())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_is_bit_identical(self, reducer):
        reducer.fit(_DATASET.features)
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "reducer.npz")
            save_reducer(reducer, path)
            loaded = load_reducer(path)

        assert np.array_equal(
            reducer.transform(_DATASET.features),
            loaded.transform(_DATASET.features),
        )
        assert loaded.ordering == reducer.ordering
        assert loaded.scale == reducer.scale
        assert loaded.whiten == reducer.whiten
        assert list(loaded.selected_) == list(reducer.selected_)
        assert loaded.retained_variance_fraction() == pytest.approx(
            reducer.retained_variance_fraction()
        )
