"""Property-based tests for the eigensolvers and PCA machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.covariance import covariance_matrix, studentize
from repro.linalg.eigen import eigh_jacobi, eigh_numpy

# Tiny magnitudes are flushed to zero: columns that are "constant up to
# one ulp of a denormal" make variance computations bounce between zero
# and float noise, which is an arithmetic artifact, not a solver bug.
_ENTRY = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
).map(lambda v: 0.0 if abs(v) < 1e-6 else v)


@st.composite
def symmetric_matrices(draw, max_d=8):
    d = draw(st.integers(1, max_d))
    a = draw(arrays(np.float64, (d, d), elements=_ENTRY))
    return (a + a.T) / 2.0


@st.composite
def data_matrices(draw, max_n=20, max_d=6):
    n = draw(st.integers(2, max_n))
    d = draw(st.integers(1, max_d))
    return draw(arrays(np.float64, (n, d), elements=_ENTRY))


class TestEigenProperties:
    @given(symmetric_matrices())
    @settings(max_examples=100, deadline=None)
    def test_jacobi_satisfies_eigen_equation(self, matrix):
        result = eigh_jacobi(matrix)
        scale = max(1.0, float(np.max(np.abs(matrix))))
        for i in range(matrix.shape[0]):
            v = result.eigenvectors[:, i]
            residual = matrix @ v - result.eigenvalues[i] * v
            assert np.max(np.abs(residual)) < 1e-8 * scale

    @given(symmetric_matrices())
    @settings(max_examples=100, deadline=None)
    def test_jacobi_orthonormality(self, matrix):
        result = eigh_jacobi(matrix)
        d = matrix.shape[0]
        gram = result.eigenvectors.T @ result.eigenvectors
        assert np.max(np.abs(gram - np.eye(d))) < 1e-9

    @given(symmetric_matrices())
    @settings(max_examples=100, deadline=None)
    def test_solvers_agree_on_spectrum(self, matrix):
        scale = max(1.0, float(np.max(np.abs(matrix))))
        ours = eigh_jacobi(matrix).eigenvalues
        reference = eigh_numpy(matrix).eigenvalues
        assert np.max(np.abs(ours - reference)) < 1e-8 * scale

    @given(symmetric_matrices())
    @settings(max_examples=100, deadline=None)
    def test_trace_preserved(self, matrix):
        result = eigh_jacobi(matrix)
        scale = max(1.0, float(np.max(np.abs(matrix))))
        assert abs(result.total_variance - np.trace(matrix)) < 1e-9 * scale * matrix.shape[0]


class TestCovarianceProperties:
    @given(data_matrices())
    @settings(max_examples=100, deadline=None)
    def test_covariance_positive_semidefinite(self, data):
        cov = covariance_matrix(data)
        eigenvalues = np.linalg.eigvalsh(cov)
        scale = max(1.0, float(np.max(np.abs(cov))))
        assert np.min(eigenvalues) > -1e-9 * scale

    @given(data_matrices())
    @settings(max_examples=100, deadline=None)
    def test_trace_is_mean_squared_deviation(self, data):
        cov = covariance_matrix(data)
        centered = data - data.mean(axis=0)
        msd = float(np.mean(np.sum(np.square(centered), axis=1)))
        assert abs(np.trace(cov) - msd) < 1e-9 * max(1.0, msd)

    @given(data_matrices())
    @settings(max_examples=100, deadline=None)
    def test_studentize_idempotent_or_rejects(self, data):
        stds = data.std(axis=0)
        if np.all(stds == 0.0):
            return  # studentize would (correctly) raise; covered elsewhere
        once = studentize(data)
        twice = studentize(once.features)
        assert np.allclose(once.features, twice.features, atol=1e-9)
