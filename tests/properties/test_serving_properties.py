"""Property: served answers are bit-identical to ``index.query``.

For every index kind, any stream of single-query requests pushed
through the serving stack — micro-batched, cached, in-process or over
worker processes — must produce exactly what sequential ``index.query``
on the freshly built index produces: same neighbor indices, same
distances bit-for-bit, same per-query stats.  The streams here randomize
arrival grouping and ``k`` per request, and replay a subset so the
cache-hit path is exercised too.
"""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.idistance import IDistanceIndex
from repro.search.igrid import IGridIndex
from repro.search.kdtree import KdTreeIndex
from repro.search.lsh import LshIndex
from repro.search.projected import ProjectionScreenedIndex
from repro.search.pyramid import PyramidIndex
from repro.search.rtree import RTreeIndex
from repro.search.vafile import VAFileIndex
from repro.serve import BatchPolicy, IndexServer

ALL_INDEXES = [
    BruteForceIndex,
    KdTreeIndex,
    RTreeIndex,
    VAFileIndex,
    PyramidIndex,
    IDistanceIndex,
    IGridIndex,
    LshIndex,
    ProjectionScreenedIndex,
]

# A small max_batch forces multiple flushes per stream; the short
# deadline keeps partial batches moving.
_POLICY = BatchPolicy(max_batch=4, max_wait_ms=1.0)


def assert_result_matches(got, expected, context):
    assert tuple(got.indices.tolist()) == tuple(
        expected.indices.tolist()
    ), context
    assert tuple(got.distances.tolist()) == tuple(
        expected.distances.tolist()
    ), context
    assert got.stats == expected.stats, context


@pytest.mark.parametrize("cls", ALL_INDEXES)
def test_served_stream_is_bit_identical(cls, tmp_path, rng):
    corpus = rng.normal(size=(90, 5))
    index = cls(corpus)
    path = str(tmp_path / "index.npz")
    index.save(path)

    # Randomized request stream: fresh queries and corpus points
    # (distance ties), each with its own k, submitted in permuted order.
    fresh = rng.normal(size=(20, 5))
    stream = [(row, int(k)) for row, k in zip(fresh, rng.integers(1, 6, 20))]
    stream += [(corpus[i], 3) for i in rng.integers(0, 90, 5)]
    order = rng.permutation(len(stream))

    with IndexServer(
        path, n_workers=0, policy=_POLICY, cache_capacity=64
    ) as server:
        futures = [
            (stream[i][0], stream[i][1], server.submit(*stream[i]))
            for i in order
        ]
        for query, k, future in futures:
            assert_result_matches(
                future.result(timeout=30),
                index.query(query, k=k),
                f"{cls.__name__} diverged at k={k}",
            )
        # Replay a slice once the originals are cached: the hit path
        # must hand back the same bit-identical results.
        for query, k in stream[:8]:
            assert_result_matches(
                server.query(query, k=k),
                index.query(query, k=k),
                f"{cls.__name__} cache replay diverged at k={k}",
            )
        report = server.stats()
    assert report.n_requests == len(stream) + 8
    assert report.cache_hits >= 8


@pytest.mark.parametrize(
    "cls", [BruteForceIndex, ProjectionScreenedIndex]
)
def test_served_stream_over_worker_pool(cls, tmp_path, rng):
    corpus = rng.normal(size=(150, 6))
    index = cls(corpus)
    path = str(tmp_path / "index.npz")
    index.save(path)
    queries = rng.normal(size=(30, 6))
    ks = rng.integers(1, 5, 30)
    with IndexServer(path, n_workers=2, policy=_POLICY) as server:
        futures = [
            server.submit(q, k=int(k)) for q, k in zip(queries, ks)
        ]
        for q, k, future in zip(queries, ks, futures):
            assert_result_matches(
                future.result(timeout=30),
                index.query(q, k=int(k)),
                f"{cls.__name__} pooled serving diverged at k={k}",
            )
