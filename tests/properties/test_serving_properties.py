"""Property: served answers are bit-identical to ``index.query``.

For every index kind, any stream of single-query requests pushed
through the serving stack — micro-batched, cached, in-process or over
worker processes — must produce exactly what sequential ``index.query``
on the freshly built index produces: same neighbor indices, same
distances bit-for-bit, same per-query stats.  The streams here randomize
arrival grouping and ``k`` per request, and replay a subset so the
cache-hit path is exercised too.
"""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.idistance import IDistanceIndex
from repro.search.igrid import IGridIndex
from repro.search.kdtree import KdTreeIndex
from repro.search.lsh import LshIndex
from repro.search.projected import ProjectionScreenedIndex
from repro.search.pyramid import PyramidIndex
from repro.search.rtree import RTreeIndex
from repro.search.vafile import VAFileIndex
from repro.serve import BatchPolicy, IndexServer

ALL_INDEXES = [
    BruteForceIndex,
    KdTreeIndex,
    RTreeIndex,
    VAFileIndex,
    PyramidIndex,
    IDistanceIndex,
    IGridIndex,
    LshIndex,
    ProjectionScreenedIndex,
]

# A small max_batch forces multiple flushes per stream; the short
# deadline keeps partial batches moving.
_POLICY = BatchPolicy(max_batch=4, max_wait_ms=1.0)


def assert_result_matches(got, expected, context):
    assert tuple(got.indices.tolist()) == tuple(
        expected.indices.tolist()
    ), context
    assert tuple(got.distances.tolist()) == tuple(
        expected.distances.tolist()
    ), context
    assert got.stats == expected.stats, context


@pytest.mark.parametrize("cls", ALL_INDEXES)
def test_served_stream_is_bit_identical(cls, tmp_path, rng):
    corpus = rng.normal(size=(90, 5))
    index = cls(corpus)
    path = str(tmp_path / "index.npz")
    index.save(path)

    # Randomized request stream: fresh queries and corpus points
    # (distance ties), each with its own k, submitted in permuted order.
    fresh = rng.normal(size=(20, 5))
    stream = [(row, int(k)) for row, k in zip(fresh, rng.integers(1, 6, 20))]
    stream += [(corpus[i], 3) for i in rng.integers(0, 90, 5)]
    order = rng.permutation(len(stream))

    with IndexServer(
        path, n_workers=0, policy=_POLICY, cache_capacity=64
    ) as server:
        futures = [
            (stream[i][0], stream[i][1], server.submit(*stream[i]))
            for i in order
        ]
        for query, k, future in futures:
            assert_result_matches(
                future.result(timeout=30),
                index.query(query, k=k),
                f"{cls.__name__} diverged at k={k}",
            )
        # Replay a slice once the originals are cached: the hit path
        # must hand back the same bit-identical results.
        for query, k in stream[:8]:
            assert_result_matches(
                server.query(query, k=k),
                index.query(query, k=k),
                f"{cls.__name__} cache replay diverged at k={k}",
            )
        report = server.stats()
    assert report.n_requests == len(stream) + 8
    assert report.cache_hits >= 8


@pytest.mark.parametrize(
    "cls", [BruteForceIndex, ProjectionScreenedIndex]
)
def test_served_stream_over_worker_pool(cls, tmp_path, rng):
    corpus = rng.normal(size=(150, 6))
    index = cls(corpus)
    path = str(tmp_path / "index.npz")
    index.save(path)
    queries = rng.normal(size=(30, 6))
    ks = rng.integers(1, 5, 30)
    with IndexServer(path, n_workers=2, policy=_POLICY) as server:
        futures = [
            server.submit(q, k=int(k)) for q, k in zip(queries, ks)
        ]
        for q, k, future in zip(queries, ks, futures):
            assert_result_matches(
                future.result(timeout=30),
                index.query(q, k=int(k)),
                f"{cls.__name__} pooled serving diverged at k={k}",
            )


@pytest.mark.parametrize(
    "build, kind",
    [
        (lambda pts: LshIndex(pts, bucket_width=3.0, seed=0, n_probes=4),
         "multi-probe lsh"),
        (lambda pts: VAFileIndex(
            pts, bits_per_dim=3, bit_allocation="variance"
        ), "variance-bit vafile"),
    ],
)
def test_served_snapshot_keeps_new_knobs_bit_identical(
    build, kind, tmp_path, rng
):
    # The v2 snapshot members (n_probes, per-dim bits) must survive the
    # save -> serve path: a served stream answers exactly like the
    # freshly built index, which itself refines through the fused gemm
    # kernel by default.
    corpus = rng.normal(size=(200, 5)) * np.array([6.0, 2.0, 1.0, 0.5, 0.1])
    index = build(corpus)
    path = str(tmp_path / "index.npz")
    index.save(path)
    queries = np.vstack([rng.normal(size=(14, 5)), corpus[:4]])
    with IndexServer(path, n_workers=0, policy=_POLICY) as server:
        futures = [server.submit(q, k=3) for q in queries]
        for q, future in zip(queries, futures):
            assert_result_matches(
                future.result(timeout=30),
                index.query(q, k=3),
                f"served {kind} diverged",
            )


@pytest.mark.parametrize(
    "build",
    [
        lambda pts: ProjectionScreenedIndex(pts, refine_kernel="gather"),
        lambda pts: VAFileIndex(pts, bits_per_dim=3, refine_kernel="gather"),
    ],
    ids=["projscreen", "vafile"],
)
def test_served_gemm_default_matches_gather_reference(build, tmp_path, rng):
    # Snapshots deliberately do not persist the refine_kernel knob: a
    # loaded (and therefore served) index runs the fused gemm kernel.
    # Serving a gather-built index must still answer bit-identically to
    # the gather original — the kernels are interchangeable arithmetic.
    corpus = rng.normal(size=(180, 6))
    corpus[40] = corpus[3]
    reference = build(corpus)
    assert reference.refine_kernel == "gather"
    path = str(tmp_path / "index.npz")
    reference.save(path)
    queries = np.vstack([rng.normal(size=(12, 6)), corpus[:4]])
    with IndexServer(path, n_workers=0, policy=_POLICY) as server:
        futures = [server.submit(q, k=4) for q in queries]
        for q, future in zip(queries, futures):
            assert_result_matches(
                future.result(timeout=30),
                reference.query(q, k=4),
                "gemm-served answers diverged from gather reference",
            )
