"""Property-based tests for the coherence model's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.coherence import coherence_factors, coherence_probabilities
from repro.stats.hypothesis_test import null_contribution_test

# Magnitudes below 1e-6 are flushed to zero: squaring a denormal-range
# value underflows to 0.0, which breaks exact-invariance assertions for
# reasons that are float arithmetic, not the model.
_FINITE = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
).map(lambda v: 0.0 if abs(v) < 1e-6 else v)


def _features(min_n=1, max_n=8, min_d=1, max_d=8):
    return st.integers(min_n, max_n).flatmap(
        lambda n: st.integers(min_d, max_d).flatmap(
            lambda d: arrays(np.float64, (n, d), elements=_FINITE)
        )
    )


@st.composite
def features_and_direction(draw):
    n = draw(st.integers(1, 6))
    d = draw(st.integers(1, 8))
    features = draw(arrays(np.float64, (n, d), elements=_FINITE))
    direction = draw(
        arrays(
            np.float64,
            (d, 1),
            elements=st.floats(
                min_value=-10, max_value=10, allow_nan=False, allow_infinity=False
            ).map(lambda v: 0.0 if abs(v) < 1e-6 else v),
        )
    )
    return features, direction


class TestCoherenceFactorProperties:
    @given(features_and_direction())
    @settings(max_examples=200, deadline=None)
    def test_bounds(self, case):
        features, direction = case
        factors = coherence_factors(features, direction)
        d = features.shape[1]
        assert np.all(factors >= 0.0)
        assert np.all(factors <= np.sqrt(d) * (1 + 1e-9))

    @given(features_and_direction())
    @settings(max_examples=150, deadline=None)
    def test_direction_sign_invariance(self, case):
        features, direction = case
        assert np.allclose(
            coherence_factors(features, direction),
            coherence_factors(features, -direction),
            atol=1e-12,
        )

    @given(
        features_and_direction(),
        st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_direction_scale_invariance(self, case, scale):
        features, direction = case
        assert np.allclose(
            coherence_factors(features, direction),
            coherence_factors(features, direction * scale),
            atol=1e-9,
        )

    @given(
        features_and_direction(),
        st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_point_scale_invariance(self, case, scale):
        features, direction = case
        assert np.allclose(
            coherence_factors(features, direction),
            coherence_factors(features * scale, direction),
            atol=1e-9,
        )

    @given(features_and_direction(), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_joint_permutation_invariance(self, case, random):
        features, direction = case
        d = features.shape[1]
        perm = list(range(d))
        random.shuffle(perm)
        perm = np.asarray(perm)
        assert np.allclose(
            coherence_factors(features, direction),
            coherence_factors(features[:, perm], direction[perm]),
            atol=1e-12,
        )

    @given(features_and_direction())
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_reference(self, case):
        features, direction = case
        factors = coherence_factors(features, direction)
        for i in range(features.shape[0]):
            contributions = features[i] * direction[:, 0]
            reference = null_contribution_test(contributions).coherence_factor
            assert factors[i, 0] == np.float64(0.0) if reference == 0.0 else True
            assert abs(factors[i, 0] - reference) < 1e-9 * max(1.0, reference)

    @given(features_and_direction())
    @settings(max_examples=150, deadline=None)
    def test_probabilities_in_unit_interval(self, case):
        features, direction = case
        probabilities = coherence_probabilities(features, direction)
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)

    @given(st.integers(1, 6), st.integers(2, 10))
    @settings(max_examples=50, deadline=None)
    def test_single_axis_direction_gives_factor_at_most_one(self, n, d):
        # With only one active dimension, CF is 0 or exactly 1.
        rng = np.random.default_rng(n * 100 + d)
        features = rng.normal(size=(n, d))
        direction = np.zeros((d, 1))
        direction[0, 0] = 1.0
        factors = coherence_factors(features, direction)
        assert np.all((np.abs(factors - 1.0) < 1e-12) | (factors == 0.0))
