"""Property-based tests for the text substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.vectorize import CountVectorizer, tfidf_weight

_TOKEN = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=0x2FF),
    min_size=1,
    max_size=6,
)
_DOCUMENT = st.lists(_TOKEN, min_size=0, max_size=15)
_CORPUS = st.lists(_DOCUMENT, min_size=1, max_size=10).filter(
    lambda docs: any(doc for doc in docs)
)


class TestCountVectorizerProperties:
    @given(_CORPUS)
    @settings(max_examples=150, deadline=None)
    def test_counts_preserve_token_totals(self, documents):
        counts = CountVectorizer().fit_transform(documents)
        for row, document in zip(counts, documents):
            assert row.sum() == len(document)

    @given(_CORPUS)
    @settings(max_examples=150, deadline=None)
    def test_counts_match_manual_counting(self, documents):
        vectorizer = CountVectorizer().fit(documents)
        counts = vectorizer.transform(documents)
        for row, document in zip(counts, documents):
            for token, column in vectorizer.vocabulary_.items():
                assert row[column] == document.count(token)

    @given(_CORPUS)
    @settings(max_examples=100, deadline=None)
    def test_vocabulary_order_independent_of_document_order(self, documents):
        forward = CountVectorizer().fit(documents)
        backward = CountVectorizer().fit(list(reversed(documents)))
        assert forward.vocabulary_ == backward.vocabulary_

    @given(_CORPUS)
    @settings(max_examples=100, deadline=None)
    def test_transform_is_deterministic(self, documents):
        vectorizer = CountVectorizer().fit(documents)
        assert np.array_equal(
            vectorizer.transform(documents), vectorizer.transform(documents)
        )


class TestTfidfProperties:
    @given(_CORPUS)
    @settings(max_examples=150, deadline=None)
    def test_rows_unit_norm_or_zero(self, documents):
        counts = CountVectorizer().fit_transform(documents)
        weighted, _ = tfidf_weight(counts)
        norms = np.linalg.norm(weighted, axis=1)
        for norm, document in zip(norms, documents):
            if document:
                assert abs(norm - 1.0) < 1e-9
            else:
                assert norm == 0.0

    @given(_CORPUS)
    @settings(max_examples=150, deadline=None)
    def test_weights_nonnegative_and_idf_positive(self, documents):
        counts = CountVectorizer().fit_transform(documents)
        weighted, idf = tfidf_weight(counts)
        assert np.all(weighted >= 0.0)
        assert np.all(idf > 0.0)

    @given(_CORPUS)
    @settings(max_examples=100, deadline=None)
    def test_query_weighting_reuses_training_idf(self, documents):
        counts = CountVectorizer().fit_transform(documents)
        _, idf = tfidf_weight(counts)
        _, returned = tfidf_weight(counts[:1], idf=idf)
        assert np.array_equal(returned, idf)
