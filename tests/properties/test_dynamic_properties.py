"""Property-based tests for the streaming-moments machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dynamic.moments import IncrementalMoments
from repro.linalg.covariance import covariance_matrix

_ENTRY = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
).map(lambda v: 0.0 if abs(v) < 1e-6 else v)


@st.composite
def streams(draw, max_rows=30, max_d=5):
    d = draw(st.integers(1, max_d))
    n = draw(st.integers(2, max_rows))
    data = draw(arrays(np.float64, (n, d), elements=_ENTRY))
    # A cut schedule: where to split the stream into batches.
    n_cuts = draw(st.integers(0, min(4, n - 1)))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(1, n - 1),
                min_size=n_cuts,
                max_size=n_cuts,
                unique=True,
            )
        )
    )
    return data, cuts


class TestMomentsProperties:
    @given(streams())
    @settings(max_examples=150, deadline=None)
    def test_any_batching_matches_batch_computation(self, case):
        data, cuts = case
        moments = IncrementalMoments(data.shape[1])
        boundaries = [0] + cuts + [data.shape[0]]
        for start, stop in zip(boundaries, boundaries[1:]):
            moments.update(data[start:stop])
        scale = max(1.0, float(np.max(np.abs(data))) ** 2)
        assert np.allclose(moments.mean, data.mean(axis=0), atol=1e-9 * scale)
        assert np.allclose(
            moments.covariance(), covariance_matrix(data), atol=1e-8 * scale
        )

    @given(streams(), streams())
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_concatenation(self, first_case, second_case):
        first, _ = first_case
        second, _ = second_case
        d = min(first.shape[1], second.shape[1])
        first, second = first[:, :d], second[:, :d]
        a = IncrementalMoments(d).update(first)
        b = IncrementalMoments(d).update(second)
        a.merge(b)
        combined = np.vstack([first, second])
        scale = max(1.0, float(np.max(np.abs(combined))) ** 2)
        assert a.count == combined.shape[0]
        assert np.allclose(
            a.covariance(), covariance_matrix(combined), atol=1e-8 * scale
        )

    @given(streams())
    @settings(max_examples=100, deadline=None)
    def test_covariance_stays_positive_semidefinite(self, case):
        data, cuts = case
        moments = IncrementalMoments(data.shape[1])
        boundaries = [0] + cuts + [data.shape[0]]
        for start, stop in zip(boundaries, boundaries[1:]):
            moments.update(data[start:stop])
            if moments.count >= 1:
                eigenvalues = np.linalg.eigvalsh(moments.covariance())
                scale = max(1.0, float(np.max(np.abs(data))) ** 2)
                assert eigenvalues.min() > -1e-8 * scale
