"""Tests for the synthetic topic corpus generator."""

import numpy as np
import pytest

from repro.text.corpus import synthetic_topic_corpus


class TestSyntheticTopicCorpus:
    def test_shapes(self):
        corpus = synthetic_topic_corpus(n_documents=50, n_topics=3, seed=0)
        assert corpus.n_documents == 50
        assert corpus.labels.shape == (50,)
        assert corpus.n_topics <= 3
        assert all(len(doc) == 20 for doc in corpus.documents)

    def test_deterministic(self):
        a = synthetic_topic_corpus(n_documents=20, seed=4)
        b = synthetic_topic_corpus(n_documents=20, seed=4)
        assert a.documents == b.documents
        assert np.array_equal(a.labels, b.labels)

    def test_vocabulary_covers_all_tokens(self):
        corpus = synthetic_topic_corpus(n_documents=40, seed=1)
        vocabulary = set(corpus.vocabulary)
        for document in corpus.documents:
            assert set(document) <= vocabulary

    def test_polysemy_shares_terms_across_topics(self):
        corpus = synthetic_topic_corpus(
            n_documents=10, n_topics=3, polysemy_fraction=0.3, seed=0
        )
        # Some topic-0 terms must be emittable by topic-1 documents; the
        # generator encodes sharing via term names staying topic0_*.
        topic1_docs = [
            doc for doc, label in zip(corpus.documents, corpus.labels) if label == 1
        ]
        if topic1_docs:  # seed-dependent, but the vocabulary always shares
            all_terms = {t for doc in corpus.documents for t in doc}
            assert any(t.startswith("topic") for t in all_terms)

    def test_no_polysemy_keeps_topics_disjoint(self):
        corpus = synthetic_topic_corpus(
            n_documents=200,
            n_topics=2,
            topic_purity=1.0,
            polysemy_fraction=0.0,
            seed=0,
        )
        topic0_terms = set()
        topic1_terms = set()
        for doc, label in zip(corpus.documents, corpus.labels):
            (topic0_terms if label == 0 else topic1_terms).update(doc)
        assert not topic0_terms & topic1_terms

    def test_purity_controls_topical_fraction(self):
        pure = synthetic_topic_corpus(
            n_documents=100, topic_purity=0.95, seed=0
        )
        noisy = synthetic_topic_corpus(
            n_documents=100, topic_purity=0.3, seed=0
        )

        def topical_fraction(corpus):
            total = own = 0
            for doc, label in zip(corpus.documents, corpus.labels):
                for token in doc:
                    total += 1
                    if token.startswith(f"topic{label}_"):
                        own += 1
            return own / total

        assert topical_fraction(pure) > topical_fraction(noisy) + 0.3

    def test_metadata(self):
        corpus = synthetic_topic_corpus(n_documents=10, seed=9)
        assert corpus.metadata["seed"] == 9
        assert corpus.metadata["n_topics"] == 5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            synthetic_topic_corpus(n_documents=0)
        with pytest.raises(ValueError):
            synthetic_topic_corpus(topic_purity=0.0)
        with pytest.raises(ValueError):
            synthetic_topic_corpus(polysemy_fraction=1.0)
        with pytest.raises(ValueError):
            synthetic_topic_corpus(document_length=0)
