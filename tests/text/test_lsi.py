"""Tests for the Latent Semantic Index."""

import numpy as np
import pytest

from repro.evaluation.feature_stripping import feature_stripping_accuracy
from repro.text.corpus import synthetic_topic_corpus
from repro.text.lsi import LatentSemanticIndex
from repro.text.vectorize import CountVectorizer, tfidf_weight


@pytest.fixture(scope="module")
def corpus():
    return synthetic_topic_corpus(n_documents=300, n_topics=5, seed=0)


@pytest.fixture(scope="module")
def lsi(corpus):
    return LatentSemanticIndex(n_concepts=5).fit(corpus.documents)


class TestLatentSemanticIndex:
    def test_document_vectors_shape(self, corpus, lsi):
        assert lsi.document_vectors_.shape == (corpus.n_documents, 5)

    def test_self_query_returns_self_first(self, corpus, lsi):
        results = lsi.query(corpus.documents[3], k=3)
        assert results[0][0] == 3
        assert results[0][1] == pytest.approx(1.0, abs=1e-9)

    def test_retrieved_documents_share_topic(self, corpus, lsi):
        hits = 0
        for i in range(0, 60, 3):
            results = lsi.query(corpus.documents[i], k=4)
            neighbor_labels = [corpus.labels[j] for j, _ in results[1:]]
            hits += sum(
                1 for label in neighbor_labels if label == corpus.labels[i]
            )
        assert hits / (20 * 3) > 0.8

    def test_lsi_improves_on_raw_terms(self, corpus, lsi):
        # The paper's motivating observation: reduced-space neighbors are
        # topically better than raw term-space neighbors.
        vectorizer = CountVectorizer().fit(corpus.documents)
        tfidf, _ = tfidf_weight(vectorizer.transform(corpus.documents))
        raw = feature_stripping_accuracy(tfidf, corpus.labels, k=3)
        reduced = feature_stripping_accuracy(
            lsi.document_vectors_, corpus.labels, k=3
        )
        assert reduced > raw + 0.03

    def test_concept_coherence_clears_baseline(self, lsi):
        from repro.core.coherence import UNIFORM_BASELINE_CP

        coherence = lsi.concept_coherence()
        # The semantic (topic) directions are strongly coherent; with 5
        # topics, at least 3 of 5 kept directions clear the baseline.
        assert np.sum(coherence > UNIFORM_BASELINE_CP + 0.05) >= 3

    def test_embed_new_documents(self, corpus, lsi):
        vectors = lsi.embed([corpus.documents[0], corpus.documents[1]])
        assert vectors.shape == (2, 5)
        assert np.allclose(vectors[0], lsi.document_vectors_[0], atol=1e-9)

    def test_unknown_vocabulary_query_returns_empty(self, lsi):
        assert lsi.query(["completely", "unknown", "words"], k=3) == []

    def test_query_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LatentSemanticIndex().query(["a"])

    def test_rejects_bad_k(self, corpus, lsi):
        with pytest.raises(ValueError, match="k must"):
            lsi.query(corpus.documents[0], k=0)

    def test_rejects_bad_n_concepts(self):
        with pytest.raises(ValueError, match="n_concepts"):
            LatentSemanticIndex(n_concepts=0)

    def test_concept_budget_clamped_to_rank(self):
        tiny = synthetic_topic_corpus(n_documents=6, n_topics=2, seed=0)
        index = LatentSemanticIndex(n_concepts=50).fit(tiny.documents)
        assert index.document_vectors_.shape[1] <= 6
