"""Tests for bag-of-words vectorization and TF-IDF."""

import numpy as np
import pytest

from repro.text.vectorize import CountVectorizer, tfidf_weight


class TestCountVectorizer:
    def test_counts(self):
        documents = [["a", "b", "a"], ["b", "c"]]
        counts = CountVectorizer().fit_transform(documents)
        # Sorted vocabulary: a, b, c.
        assert np.array_equal(counts, [[2, 1, 0], [0, 1, 1]])

    def test_vocabulary_sorted_and_stable(self):
        vectorizer = CountVectorizer().fit([["zebra", "apple"], ["mango"]])
        assert list(vectorizer.vocabulary_) == ["apple", "mango", "zebra"]

    def test_unseen_terms_ignored(self):
        vectorizer = CountVectorizer().fit([["a", "b"]])
        counts = vectorizer.transform([["a", "unknown", "unknown"]])
        assert np.array_equal(counts, [[1, 0]])

    def test_empty_document_is_zero_row(self):
        vectorizer = CountVectorizer().fit([["a"]])
        counts = vectorizer.transform([[]])
        assert np.array_equal(counts, [[0]])

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            CountVectorizer().transform([["a"]])

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError, match="no terms"):
            CountVectorizer().fit([[], []])

    def test_accepts_generator_input(self):
        counts = CountVectorizer().fit_transform(
            iter([("a", "b"), ("b",)])
        )
        assert counts.shape == (2, 2)


class TestTfidfWeight:
    def test_rows_unit_normalized(self):
        counts = np.array([[3.0, 1.0, 0.0], [0.0, 2.0, 2.0]])
        weighted, _ = tfidf_weight(counts)
        norms = np.linalg.norm(weighted, axis=1)
        assert np.allclose(norms, 1.0)

    def test_rare_terms_weighted_up(self):
        # Term 0 appears in every document, term 1 in only one.
        counts = np.array([[1.0, 1.0], [1.0, 0.0], [1.0, 0.0]])
        weighted, idf = tfidf_weight(counts)
        assert idf[1] > idf[0]
        # Within document 0 (equal counts), the rare term dominates.
        assert weighted[0, 1] > weighted[0, 0]

    def test_zero_document_stays_zero(self):
        counts = np.array([[1.0, 0.0], [0.0, 0.0]])
        weighted, _ = tfidf_weight(counts)
        assert np.array_equal(weighted[1], [0.0, 0.0])

    def test_query_weighting_reuses_training_idf(self):
        train = np.array([[1.0, 1.0], [1.0, 0.0], [1.0, 0.0]])
        _, idf = tfidf_weight(train)
        query_counts = np.array([[1.0, 1.0]])
        weighted, returned = tfidf_weight(query_counts, idf=idf)
        assert np.array_equal(returned, idf)
        assert weighted[0, 1] > weighted[0, 0]

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            tfidf_weight(np.array([[-1.0]]))

    def test_rejects_misaligned_idf(self):
        with pytest.raises(ValueError, match="idf"):
            tfidf_weight(np.ones((2, 3)), idf=np.ones(2))
