"""Tests for the UCI-like presets — the paper's evaluation datasets."""

import numpy as np

from repro.datasets.uci_like import (
    NOISY_AMPLITUDE,
    arrhythmia_like,
    ionosphere_like,
    musk_like,
    noisy_dataset_a,
    noisy_dataset_b,
)


class TestPresetShapes:
    def test_musk_matches_uci_dimensions(self):
        data = musk_like(seed=0)
        assert data.n_samples == 476
        assert data.n_dims == 166
        assert data.n_classes == 2

    def test_ionosphere_matches_uci_dimensions(self):
        data = ionosphere_like(seed=0)
        assert data.n_samples == 351
        assert data.n_dims == 34
        assert data.n_classes == 2

    def test_arrhythmia_matches_uci_dimensions(self):
        data = arrhythmia_like(seed=0)
        assert data.n_samples == 452
        assert data.n_dims == 279

    def test_arrhythmia_has_constant_columns(self):
        data = arrhythmia_like(seed=0)
        stds = data.features.std(axis=0)
        assert np.sum(stds == 0.0) == 20

    def test_arrhythmia_dominant_class(self):
        data = arrhythmia_like(seed=0)
        counts = data.class_counts()
        assert max(counts, key=counts.get) == 0
        assert counts[0] > data.n_samples * 0.4

    def test_arrhythmia_heterogeneous_scales(self):
        data = arrhythmia_like(seed=0)
        stds = data.features.std(axis=0)
        positive = stds[stds > 0]
        assert positive.max() / positive.min() > 10.0

    def test_presets_deterministic(self):
        assert np.array_equal(
            ionosphere_like(seed=3).features, ionosphere_like(seed=3).features
        )

    def test_presets_vary_with_seed(self):
        assert not np.array_equal(
            ionosphere_like(seed=0).features, ionosphere_like(seed=1).features
        )


class TestNoisyPresets:
    def test_noisy_a_corrupts_ten_dims(self):
        noisy = noisy_dataset_a(seed=0)
        assert noisy.n_dims == 34
        assert len(noisy.metadata["corrupted_dims"]) == 10
        assert noisy.metadata["corruption_amplitude"] == NOISY_AMPLITUDE

    def test_noisy_b_corrupts_ten_of_informative_dims(self):
        noisy = noisy_dataset_b(seed=0)
        # Constant columns are dropped by studentization: 279 - 20 = 259.
        assert noisy.n_dims == 259
        assert len(noisy.metadata["corrupted_dims"]) == 10

    def test_noisy_base_is_unit_variance(self):
        noisy = noisy_dataset_a(seed=0)
        corrupted = set(noisy.metadata["corrupted_dims"])
        untouched = [j for j in range(noisy.n_dims) if j not in corrupted]
        stds = noisy.features[:, untouched].std(axis=0)
        assert np.allclose(stds, 1.0, atol=1e-9)

    def test_corrupted_columns_dominate_variance(self):
        # The regime the noisy experiments need: planted noise towers
        # over the (unit-variance) signal columns.
        noisy = noisy_dataset_a(seed=0)
        corrupted = noisy.metadata["corrupted_dims"]
        noise_vars = noisy.features[:, corrupted].var(axis=0)
        assert noise_vars.min() > 100.0

    def test_labels_preserved_from_base(self):
        base = ionosphere_like(seed=0)
        noisy = noisy_dataset_a(seed=0)
        assert np.array_equal(base.labels, noisy.labels)

    def test_noisy_names(self):
        assert noisy_dataset_a().name == "noisy-A"
        assert noisy_dataset_b().name == "noisy-B"
