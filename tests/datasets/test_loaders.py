"""Tests for repro.datasets.loaders."""

import numpy as np
import pytest

from repro.datasets.loaders import load_csv_dataset


def _write(tmp_path, text, name="data.csv"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestLoadCsvDataset:
    def test_basic_load(self, tmp_path):
        path = _write(tmp_path, "1.0,2.0,g\n3.0,4.0,b\n5.0,6.0,g\n")
        data = load_csv_dataset(path)
        assert data.n_samples == 3
        assert data.n_dims == 2
        assert list(data.labels) == [0, 1, 0]
        assert data.metadata["label_codes"] == {"g": 0, "b": 1}

    def test_label_column_first(self, tmp_path):
        path = _write(tmp_path, "yes,1.0\nno,2.0\n")
        data = load_csv_dataset(path, label_column=0)
        assert np.allclose(data.features[:, 0], [1.0, 2.0])
        assert list(data.labels) == [0, 1]

    def test_missing_values_imputed_with_column_mean(self, tmp_path):
        path = _write(tmp_path, "1.0,0\n?,0\n3.0,1\n")
        data = load_csv_dataset(path)
        assert data.features[1, 0] == pytest.approx(2.0)
        assert data.metadata["imputed_cells"] == 1

    def test_entirely_missing_column_raises(self, tmp_path):
        path = _write(tmp_path, "?,0\n?,1\n")
        with pytest.raises(ValueError, match="entirely missing"):
            load_csv_dataset(path)

    def test_skips_blank_lines(self, tmp_path):
        path = _write(tmp_path, "1.0,a\n\n2.0,b\n\n")
        assert load_csv_dataset(path).n_samples == 2

    def test_ragged_rows_raise(self, tmp_path):
        path = _write(tmp_path, "1.0,2.0,a\n3.0,b\n")
        with pytest.raises(ValueError, match="expected 3 fields"):
            load_csv_dataset(path)

    def test_non_numeric_feature_raises(self, tmp_path):
        path = _write(tmp_path, "1.0,abc,x\n")
        with pytest.raises(ValueError, match="non-numeric"):
            load_csv_dataset(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_csv_dataset(str(tmp_path / "nope.csv"))

    def test_empty_file_raises(self, tmp_path):
        path = _write(tmp_path, "")
        with pytest.raises(ValueError, match="no data rows"):
            load_csv_dataset(path)

    def test_label_column_out_of_range(self, tmp_path):
        path = _write(tmp_path, "1.0,a\n")
        with pytest.raises(ValueError, match="out of range"):
            load_csv_dataset(path, label_column=5)

    def test_custom_delimiter(self, tmp_path):
        path = _write(tmp_path, "1.0;2.0;a\n3.0;4.0;b\n")
        data = load_csv_dataset(path, delimiter=";")
        assert data.n_dims == 2

    def test_name_defaults_to_basename(self, tmp_path):
        path = _write(tmp_path, "1.0,a\n2.0,b\n", name="iris.data")
        assert load_csv_dataset(path).name == "iris.data"

    def test_explicit_name(self, tmp_path):
        path = _write(tmp_path, "1.0,a\n2.0,b\n")
        assert load_csv_dataset(path, name="mine").name == "mine"

    def test_ionosphere_layout_roundtrip(self, tmp_path):
        # A miniature file in the real UCI ionosphere layout: 34 numeric
        # features then the g/b class label.
        rng = np.random.default_rng(0)
        rows = []
        for i in range(6):
            values = ",".join(f"{v:.3f}" for v in rng.uniform(-1, 1, 34))
            rows.append(f"{values},{'g' if i % 2 else 'b'}")
        path = _write(tmp_path, "\n".join(rows) + "\n")
        data = load_csv_dataset(path)
        assert data.n_dims == 34
        assert data.n_classes == 2
