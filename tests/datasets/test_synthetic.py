"""Tests for repro.datasets.synthetic generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    gaussian_blobs,
    latent_concept_dataset,
    uniform_cube,
)


class TestUniformCube:
    def test_shape_and_range(self):
        data = uniform_cube(100, 7, low=-1.0, high=2.0, seed=1)
        assert data.features.shape == (100, 7)
        assert data.features.min() >= -1.0
        assert data.features.max() <= 2.0

    def test_deterministic(self):
        a = uniform_cube(10, 3, seed=5)
        b = uniform_cube(10, 3, seed=5)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = uniform_cube(10, 3, seed=5)
        b = uniform_cube(10, 3, seed=6)
        assert not np.array_equal(a.features, b.features)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="low < high"):
            uniform_cube(10, 3, low=1.0, high=1.0)

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            uniform_cube(0, 3)
        with pytest.raises(ValueError):
            uniform_cube(3, 0)


class TestGaussianBlobs:
    def test_shapes(self):
        data = gaussian_blobs(80, 5, n_classes=3, seed=2)
        assert data.features.shape == (80, 5)
        assert set(np.unique(data.labels)) <= {0, 1, 2}

    def test_separable_when_far_apart(self):
        data = gaussian_blobs(100, 4, n_classes=2, separation=50.0, spread=1.0, seed=0)
        center0 = data.features[data.labels == 0].mean(axis=0)
        center1 = data.features[data.labels == 1].mean(axis=0)
        assert np.linalg.norm(center0 - center1) > 10.0

    def test_rejects_more_classes_than_samples(self):
        with pytest.raises(ValueError):
            gaussian_blobs(2, 3, n_classes=5)


class TestLatentConceptDataset:
    def test_shape(self):
        data = latent_concept_dataset(50, 12, 3, seed=0)
        assert data.features.shape == (50, 12)
        assert data.labels.shape == (50,)

    def test_deterministic(self):
        a = latent_concept_dataset(30, 10, 3, seed=9)
        b = latent_concept_dataset(30, 10, 3, seed=9)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_constant_dims_appended(self):
        data = latent_concept_dataset(30, 10, 3, n_constant_dims=4, seed=0)
        assert data.features.shape == (30, 14)
        assert np.all(data.features[:, 10:] == 0.0)

    def test_metadata_records_parameters(self):
        data = latent_concept_dataset(30, 10, 3, seed=7)
        assert data.metadata["n_concepts"] == 3
        assert data.metadata["seed"] == 7
        assert len(data.metadata["dim_concept"]) == 10

    def test_every_dim_assigned_a_concept(self):
        data = latent_concept_dataset(30, 10, 3, seed=0)
        assignment = data.metadata["dim_concept"]
        assert set(assignment) == {0, 1, 2}

    def test_class_weights_respected(self):
        weights = [0.9, 0.1]
        data = latent_concept_dataset(
            2000, 8, 2, n_classes=2, class_weights=weights, seed=0
        )
        counts = data.class_counts()
        assert counts[0] > 5 * counts[1]

    def test_scale_spread_changes_column_scales(self):
        flat = latent_concept_dataset(200, 20, 4, scale_spread=0.0, seed=0)
        spread = latent_concept_dataset(200, 20, 4, scale_spread=2.0, seed=0)
        flat_stds = flat.features.std(axis=0)
        spread_stds = spread.features.std(axis=0)
        assert spread_stds.max() / spread_stds.min() > 5 * (
            flat_stds.max() / flat_stds.min()
        )

    def test_concepts_induce_correlations(self):
        # Dimensions in the same block must correlate strongly; the
        # planted structure is what the coherence model detects.
        data = latent_concept_dataset(
            400, 12, 3, noise_std=0.3, cross_loading=0.0, seed=1
        )
        assignment = np.asarray(data.metadata["dim_concept"])
        corr = np.corrcoef(data.features, rowvar=False)
        same_block = np.abs(corr[0, assignment == assignment[0]])
        other_block = np.abs(corr[0, assignment != assignment[0]])
        assert np.median(same_block) > 0.8
        assert np.median(other_block) < 0.4

    def test_noiseless_data_has_rank_k(self):
        data = latent_concept_dataset(
            100, 20, 4, noise_std=0.0, cross_loading=0.0, seed=0
        )
        singular_values = np.linalg.svd(
            data.features - data.features.mean(axis=0), compute_uv=False
        )
        assert np.sum(singular_values > 1e-8) == 4

    def test_rejects_concepts_exceeding_dims(self):
        with pytest.raises(ValueError, match="n_concepts"):
            latent_concept_dataset(10, 4, 5)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError, match="class_weights"):
            latent_concept_dataset(10, 4, 2, n_classes=2, class_weights=[1.0])
        with pytest.raises(ValueError, match="zero"):
            latent_concept_dataset(10, 4, 2, n_classes=2, class_weights=[0.0, 0.0])

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            latent_concept_dataset(10, 4, 2, noise_std=-1.0)

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError, match="two samples"):
            latent_concept_dataset(1, 4, 2)

    def test_labels_within_range(self):
        data = latent_concept_dataset(100, 8, 2, n_classes=5, seed=0)
        assert data.labels.min() >= 0
        assert data.labels.max() < 5
