"""Tests for repro.datasets.types.Dataset."""

import numpy as np
import pytest

from repro.datasets.types import Dataset


def _make(n=6, d=3):
    features = np.arange(n * d, dtype=float).reshape(n, d)
    labels = np.arange(n) % 2
    return Dataset(name="demo", features=features, labels=labels)


class TestDatasetValidation:
    def test_basic_properties(self):
        data = _make(6, 3)
        assert data.n_samples == 6
        assert data.n_dims == 3
        assert data.n_classes == 2

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError, match="2-d"):
            Dataset(name="x", features=np.ones(3), labels=np.zeros(3))

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            Dataset(name="x", features=np.ones((3, 2)), labels=np.zeros(4))

    def test_rejects_nan_features(self):
        features = np.ones((2, 2))
        features[0, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            Dataset(name="x", features=features, labels=np.zeros(2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Dataset(name="x", features=np.empty((0, 3)), labels=np.empty(0))

    def test_coerces_dtypes(self):
        data = Dataset(
            name="x",
            features=[[1, 2], [3, 4]],
            labels=[0, 1],
        )
        assert data.features.dtype == np.float64
        assert data.labels.dtype == np.int64


class TestDatasetOperations:
    def test_class_counts(self):
        data = _make(6)
        assert data.class_counts() == {0: 3, 1: 3}

    def test_subset(self):
        data = _make(6, 3)
        sub = data.subset([1, 3])
        assert sub.n_samples == 2
        assert np.array_equal(sub.features, data.features[[1, 3]])
        assert np.array_equal(sub.labels, data.labels[[1, 3]])

    def test_subset_copies(self):
        data = _make()
        sub = data.subset([0])
        sub.features[0, 0] = 999.0
        assert data.features[0, 0] != 999.0

    def test_subset_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            _make().subset([])

    def test_with_features(self):
        data = _make(4, 3)
        replaced = data.with_features(np.zeros((4, 2)), name="reduced")
        assert replaced.name == "reduced"
        assert replaced.n_dims == 2
        assert np.array_equal(replaced.labels, data.labels)

    def test_with_features_keeps_name_by_default(self):
        data = _make(4, 3)
        assert data.with_features(np.zeros((4, 2))).name == "demo"

    def test_metadata_defaults_to_empty(self):
        assert _make().metadata == {}


class TestDatasetCsvRoundtrip:
    def test_roundtrip_through_loader(self, tmp_path):
        from repro.datasets.loaders import load_csv_dataset

        data = _make(8, 3)
        path = str(tmp_path / "out.csv")
        data.to_csv(path)
        loaded = load_csv_dataset(path)
        assert np.allclose(loaded.features, data.features)
        # Labels are re-coded in first-appearance order but partition
        # the rows identically.
        for value in np.unique(data.labels):
            rows = data.labels == value
            assert np.unique(loaded.labels[rows]).size == 1

    def test_label_first_layout(self, tmp_path):
        from repro.datasets.loaders import load_csv_dataset

        data = _make(5, 2)
        path = str(tmp_path / "out.csv")
        data.to_csv(path, label_last=False)
        loaded = load_csv_dataset(path, label_column=0)
        assert np.allclose(loaded.features, data.features)

    def test_full_precision_preserved(self, tmp_path):
        from repro.datasets.loaders import load_csv_dataset

        rng = np.random.default_rng(0)
        data = Dataset(
            name="precise",
            features=rng.normal(size=(4, 3)) * 1e-7,
            labels=np.zeros(4, dtype=int),
        )
        path = str(tmp_path / "out.csv")
        data.to_csv(path)
        loaded = load_csv_dataset(path)
        assert np.array_equal(loaded.features, data.features)
