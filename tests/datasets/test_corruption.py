"""Tests for repro.datasets.corruption."""

import numpy as np
import pytest

from repro.datasets.corruption import corrupt_with_uniform
from repro.datasets.synthetic import latent_concept_dataset


@pytest.fixture()
def clean():
    return latent_concept_dataset(100, 12, 3, seed=0, name="clean")


class TestCorruptWithUniform:
    def test_replaces_requested_number_of_columns(self, clean):
        noisy = corrupt_with_uniform(clean, n_dims=4, amplitude=60.0, seed=1)
        corrupted = noisy.metadata["corrupted_dims"]
        assert len(corrupted) == 4
        untouched = [j for j in range(12) if j not in corrupted]
        assert np.array_equal(
            noisy.features[:, untouched], clean.features[:, untouched]
        )
        for j in corrupted:
            assert not np.array_equal(noisy.features[:, j], clean.features[:, j])

    def test_noise_range(self, clean):
        noisy = corrupt_with_uniform(clean, n_dims=12, amplitude=60.0, seed=0)
        assert noisy.features.min() >= -30.0
        assert noisy.features.max() <= 30.0

    def test_noise_variance_matches_amplitude(self, clean):
        big = latent_concept_dataset(20000, 2, 1, seed=0)
        noisy = corrupt_with_uniform(big, n_dims=1, amplitude=60.0, seed=0)
        j = noisy.metadata["corrupted_dims"][0]
        assert np.var(noisy.features[:, j]) == pytest.approx(300.0, rel=0.05)

    def test_explicit_dims(self, clean):
        noisy = corrupt_with_uniform(clean, n_dims=0, amplitude=10.0, dims=[2, 5], seed=0)
        assert noisy.metadata["corrupted_dims"] == [2, 5]

    def test_explicit_dims_deduplicated(self, clean):
        noisy = corrupt_with_uniform(clean, n_dims=0, amplitude=10.0, dims=[5, 2, 5], seed=0)
        assert noisy.metadata["corrupted_dims"] == [2, 5]

    def test_labels_unchanged(self, clean):
        noisy = corrupt_with_uniform(clean, n_dims=3, amplitude=5.0, seed=0)
        assert np.array_equal(noisy.labels, clean.labels)

    def test_original_not_mutated(self, clean):
        before = clean.features.copy()
        corrupt_with_uniform(clean, n_dims=5, amplitude=60.0, seed=0)
        assert np.array_equal(clean.features, before)

    def test_default_name_suffix(self, clean):
        assert corrupt_with_uniform(clean, 2, 1.0, seed=0).name == "clean+noise"

    def test_custom_name(self, clean):
        assert corrupt_with_uniform(clean, 2, 1.0, seed=0, name="noisy-A").name == "noisy-A"

    def test_deterministic(self, clean):
        a = corrupt_with_uniform(clean, 3, 60.0, seed=4)
        b = corrupt_with_uniform(clean, 3, 60.0, seed=4)
        assert np.array_equal(a.features, b.features)
        assert a.metadata["corrupted_dims"] == b.metadata["corrupted_dims"]

    def test_rejects_bad_amplitude(self, clean):
        with pytest.raises(ValueError, match="amplitude"):
            corrupt_with_uniform(clean, 3, 0.0)

    def test_rejects_too_many_dims(self, clean):
        with pytest.raises(ValueError, match="n_dims"):
            corrupt_with_uniform(clean, 13, 1.0)

    def test_rejects_out_of_range_explicit_dims(self, clean):
        with pytest.raises(ValueError, match="dims"):
            corrupt_with_uniform(clean, 0, 1.0, dims=[12])

    def test_metadata_records_amplitude(self, clean):
        noisy = corrupt_with_uniform(clean, 2, 42.0, seed=0)
        assert noisy.metadata["corruption_amplitude"] == 42.0
