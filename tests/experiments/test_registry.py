"""Tests for the experiment registry."""

import pytest

from repro.experiments import (
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.data import dataset, dataset_names


EXPECTED_PAPER_IDS = [
    "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig10", "fig11", "table1", "fig12", "fig13",
    "fig14", "fig15", "sec3",
]

EXPECTED_ABLATION_IDS = [
    "abl-contrast", "abl-index-pruning", "abl-stability", "abl-scaling",
    "abl-k", "abl-amplitude", "abl-eigensolver", "abl-projected",
    "abl-baselines", "abl-dynamic", "abl-lsh", "abl-igrid",
    "abl-fractional", "abl-text", "abl-whitening",
]


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = [e.experiment_id for e in list_experiments()]
        assert ids == EXPECTED_PAPER_IDS + EXPECTED_ABLATION_IDS

    def test_ablation_runs(self):
        result = run_experiment("abl-eigensolver")
        assert result.data["spectrum_gap"] < 1e-9
        assert "LAPACK" in result.report

    def test_get_by_id(self):
        experiment = get_experiment("fig13")
        assert experiment.paper_artifact == "Figure 13"
        assert "ordering" in experiment.description

    def test_unknown_id_raises_with_choices(self):
        with pytest.raises(KeyError, match="fig03"):
            get_experiment("fig99")

    def test_descriptions_nonempty(self):
        for experiment in list_experiments():
            assert experiment.description
            assert experiment.paper_artifact


class TestRunExperiment:
    def test_scatter_result_structure(self):
        result = run_experiment("fig06")
        assert "coherence probability" in result.report
        assert result.data["rank_correlation"] > 0.0
        assert result.data["analysis"].n_components == 34

    def test_quality_result_structure(self):
        result = run_experiment("fig08")
        dims, accuracy = result.data["scaled_optimum"]
        assert 1 <= dims <= 34
        assert 0.0 <= accuracy <= 1.0
        assert "prediction accuracy" in result.report

    def test_table1_has_three_rows(self):
        result = run_experiment("table1")
        assert len(result.data["summaries"]) == 3
        assert "1%-thr" in result.report

    def test_noisy_ordering_result(self):
        result = run_experiment("fig13")
        c_dims, c_best = result.data["coherent_optimum"]
        _, e_best = result.data["classical_optimum"]
        assert c_best > e_best
        assert result.data["n_corrupted"] == 10

    def test_sec3_matches_closed_form(self):
        result = run_experiment("sec3")
        predicted = result.data["predicted"]
        for _, measured in result.data["measurements"]:
            assert measured["mean_probability"] == pytest.approx(
                predicted, abs=1e-10
            )

    def test_seed_changes_data_not_structure(self):
        a = run_experiment("fig07", seed=0)
        b = run_experiment("fig07", seed=1)
        assert a.data["lift"] != b.data["lift"]
        # The qualitative claim holds at both seeds.
        assert a.data["lift"] > 0.0
        assert b.data["lift"] > 0.0

    def test_runs_are_cached_per_seed(self):
        first = run_experiment("fig04", seed=0)
        second = run_experiment("fig04", seed=0)
        # Identical cached analyses back both results.
        assert first.data["raw"] is second.data["raw"]


class TestDataModule:
    def test_dataset_names(self):
        assert set(dataset_names()) == {
            "musk", "ionosphere", "arrhythmia", "noisy-A", "noisy-B"
        }

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            dataset("adult")

    def test_dataset_cached(self):
        assert dataset("ionosphere") is dataset("ionosphere")
        assert dataset("ionosphere", seed=1) is not dataset("ionosphere")
