"""Contract tests for ablation experiment runners.

The benchmark harness asserts the qualitative shapes; these tests pin
the *structure* of the returned data — what a programmatic caller can
rely on — on the fast runners (the heavy ones are exercised by the
benches, which run in the same CI invocation).
"""

import pytest

from repro.experiments import run_experiment


class TestFastAblationContracts:
    def test_eigensolver_fields(self):
        result = run_experiment("abl-eigensolver")
        assert set(result.data) == {"spectrum_gap", "trace_gap"}
        assert result.data["spectrum_gap"] >= 0.0
        assert "jacobi" in result.report

    def test_fractional_rows_shape(self):
        result = run_experiment("abl-fractional")
        rows = result.data["rows"]
        assert [row[0] for row in rows] == [2, 10, 50, 200]
        for row in rows:
            assert len(row) == 5  # d + four metrics
            assert all(value > 0 for value in row[1:])

    def test_igrid_rows_labelled(self):
        result = run_experiment("abl-igrid")
        labels = [row[0] for row in result.data["rows"]]
        assert any("IGrid" in label for label in labels)
        assert any("coherence-reduced" in label for label in labels)
        for _, accuracy in result.data["rows"]:
            assert 0.0 <= accuracy <= 1.0

    def test_text_rows_cover_budgets(self):
        result = run_experiment("abl-text")
        names = [row[0] for row in result.data["rows"]]
        assert names[0] == "raw TF-IDF"
        assert "LSI (k=5)" in names
        assert result.data["coherence"].shape == (5,)

    def test_baselines_row_layout(self):
        result = run_experiment("abl-baselines")
        rows = result.data["rows"]
        assert [row[0] for row in rows] == ["ionosphere", "noisy-A"]
        for row in rows:
            # name, budget, 4 reducers, full-dim = 7 cells.
            assert len(row) == 7

    def test_seeds_are_honored(self):
        a = run_experiment("abl-eigensolver", seed=0)
        b = run_experiment("abl-eigensolver", seed=1)
        # Different seeds build different datasets; the *contract*
        # (near-zero gap) holds for both.
        assert a.data["spectrum_gap"] < 1e-9
        assert b.data["spectrum_gap"] < 1e-9

    def test_unknown_ablation_id_raises(self):
        with pytest.raises(KeyError, match="abl-contrast"):
            run_experiment("abl-nonexistent")
