"""Tests for the paper experiment runners' structure and contracts."""

import numpy as np
import pytest

from repro.experiments import paper
from repro.experiments.data import dataset


class TestScatterRunner:
    def test_top_limits_rows(self):
        result = paper.scatter_experiment("ionosphere", seed=0, top=5)
        # header + separator + 5 rows, then trailing commentary lines.
        lines = result.report.splitlines()
        assert "top 5 of 34" in lines[0]
        assert "noise tail" in result.report

    def test_top_none_prints_everything(self):
        result = paper.scatter_experiment("ionosphere", seed=0, top=None)
        assert "top 34 of 34" in result.report
        assert "noise tail" not in result.report  # no tail left to summarize

    def test_data_alignment(self):
        result = paper.scatter_experiment("musk", seed=0)
        analysis = result.data["analysis"]
        assert analysis.eigenvalues.size == analysis.coherence_probabilities.size
        assert result.data["n_concepts"] == 13


class TestScalingRunner:
    def test_lift_consistency(self):
        result = paper.scaling_experiment("arrhythmia", seed=0)
        assert result.data["lift"] == pytest.approx(
            result.data["scaled_top_cp"] - result.data["raw_top_cp"]
        )

    def test_report_mentions_both_curves(self):
        result = paper.scaling_experiment("musk", seed=0)
        assert "raw CP" in result.report
        assert "scaled CP" in result.report


class TestQualityRunner:
    def test_optima_match_sweeps(self):
        result = paper.quality_experiment("ionosphere", seed=0)
        assert result.data["scaled_optimum"] == result.data["scaled"].optimal()
        assert result.data["raw_optimum"] == result.data["raw"].optimal()

    def test_report_has_chart_and_numbers(self):
        result = paper.quality_experiment("ionosphere", seed=0)
        assert "curve shapes" in result.report
        assert "full-dim" in result.report


class TestNoisyRunners:
    def test_scatter_names_corruption(self):
        result = paper.noisy_scatter_experiment("noisy-A", seed=0)
        assert result.data["n_corrupted"] == len(
            dataset("noisy-A", 0).metadata["corrupted_dims"]
        )
        assert "planted noise" in result.report

    def test_ordering_exposes_retained_set(self):
        result = paper.noisy_ordering_experiment("noisy-B", seed=0)
        dims, _ = result.data["coherent_optimum"]
        assert len(result.data["retained_indices"]) == dims
        assert 0.0 <= result.data["variance_kept_at_optimum"] <= 1.0


class TestSubsample:
    def test_short_grid_untouched(self):
        grid = np.arange(10)
        assert np.array_equal(paper._subsample(grid, max_points=24), grid)

    def test_long_grid_thinned_with_endpoints(self):
        grid = np.arange(200)
        thinned = paper._subsample(grid, max_points=24)
        assert thinned.size <= 24
        assert thinned[0] == 0
        assert thinned[-1] == 199
        assert np.all(np.diff(thinned) > 0)
