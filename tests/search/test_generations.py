"""Generation store: versioned snapshots behind one atomic manifest.

:class:`GenerationStore` is the persistence half of mutable serving —
compactions publish new generations and hot-swap onto them, restarts
resume from the active one.  These tests pin the invariants the
mutation layer leans on: strictly-ascending global row ids (the
tie-break correctness precondition), an atomically repointed manifest,
a monotonic ``next_row_id`` handoff, and pruning that never deletes the
active generation but does sweep orphaned directories.
"""

import json
import os

import numpy as np
import pytest

from repro.search import BruteForceIndex, KdTreeIndex
from repro.search.snapshot import (
    GENERATION_MANIFEST_SCHEMA,
    GenerationError,
    GenerationStore,
)


@pytest.fixture
def corpus():
    rng = np.random.default_rng(3)
    return rng.standard_normal((20, 4))


@pytest.fixture
def store(tmp_path):
    return GenerationStore(os.path.join(tmp_path, "gens"))


class TestPublish:
    def test_initial_publish_becomes_active(self, store, corpus):
        index = BruteForceIndex(corpus)
        info = store.publish(
            index,
            np.arange(20),
            next_row_id=20,
            reason="initial",
        )
        assert store.exists()
        active = store.active()
        assert active.generation_id == info.generation_id == 0
        assert active.kind == "bruteforce"
        assert active.n_points == 20
        assert active.next_row_id == 20
        assert active.reason == "initial"
        np.testing.assert_array_equal(active.load_ids(), np.arange(20))

    def test_second_publish_repoints_active(self, store, corpus):
        store.publish(
            BruteForceIndex(corpus), np.arange(20), next_row_id=20
        )
        store.publish(
            BruteForceIndex(corpus[:10]),
            np.arange(0, 20, 2),
            next_row_id=25,
            reason="size",
        )
        active = store.active()
        assert active.generation_id == 1
        assert active.reason == "size"
        assert active.next_row_id == 25
        assert [g.generation_id for g in store.generations()] == [0, 1]

    def test_sparse_ascending_ids_accepted(self, store, corpus):
        ids = np.array([1, 4, 9, 16, 25])
        info = store.publish(
            BruteForceIndex(corpus[:5]), ids, next_row_id=26
        )
        np.testing.assert_array_equal(info.load_ids(), ids)

    def test_non_ascending_ids_rejected(self, store, corpus):
        with pytest.raises(GenerationError, match="strictly ascending"):
            store.publish(
                BruteForceIndex(corpus[:3]),
                np.array([0, 2, 2]),
                next_row_id=3,
            )

    def test_wrong_id_count_rejected(self, store, corpus):
        with pytest.raises(GenerationError, match="one id per"):
            store.publish(
                BruteForceIndex(corpus[:3]),
                np.arange(4),
                next_row_id=4,
            )

    def test_stale_next_row_id_rejected(self, store, corpus):
        with pytest.raises(GenerationError, match="next_row_id"):
            store.publish(
                BruteForceIndex(corpus[:3]),
                np.arange(3),
                next_row_id=2,
            )

    def test_snapshot_loads_with_declared_kind(self, store, corpus):
        store.publish(
            KdTreeIndex(corpus, leaf_size=4),
            np.arange(20),
            next_row_id=20,
        )
        active = store.active()
        assert active.kind == "kdtree"
        loaded = KdTreeIndex.load(active.snapshot_path)
        result = loaded.query(corpus[0], 1)
        assert result.neighbors[0].index == 0


class TestManifestRobustness:
    def test_missing_manifest(self, store):
        assert not store.exists()
        with pytest.raises(GenerationError, match="not a readable"):
            store.active()

    def test_corrupt_manifest(self, store, corpus):
        store.publish(
            BruteForceIndex(corpus), np.arange(20), next_row_id=20
        )
        with open(store.manifest_path, "w") as handle:
            handle.write("{ not json")
        with pytest.raises(GenerationError, match="not a readable"):
            store.generations()

    def test_foreign_schema(self, store, corpus):
        store.publish(
            BruteForceIndex(corpus), np.arange(20), next_row_id=20
        )
        with open(store.manifest_path) as handle:
            raw = json.load(handle)
        raw["schema"] = "something-else/v9"
        with open(store.manifest_path, "w") as handle:
            json.dump(raw, handle)
        with pytest.raises(GenerationError, match="schema"):
            store.active()

    def test_manifest_schema_field(self, store, corpus):
        store.publish(
            BruteForceIndex(corpus), np.arange(20), next_row_id=20
        )
        with open(store.manifest_path) as handle:
            raw = json.load(handle)
        assert raw["schema"] == GENERATION_MANIFEST_SCHEMA
        assert raw["active"] == 0

    def test_dangling_active_pointer(self, store, corpus):
        store.publish(
            BruteForceIndex(corpus), np.arange(20), next_row_id=20
        )
        with open(store.manifest_path) as handle:
            raw = json.load(handle)
        raw["active"] = 7
        with open(store.manifest_path, "w") as handle:
            json.dump(raw, handle)
        with pytest.raises(GenerationError, match="active"):
            store.active()


class TestPrune:
    def _publish_n(self, store, corpus, n):
        for i in range(n):
            store.publish(
                BruteForceIndex(corpus),
                np.arange(20),
                next_row_id=20 + i,
            )

    def test_keeps_newest(self, store, corpus):
        self._publish_n(store, corpus, 4)
        dropped = store.prune(keep=2)
        assert dropped == (0, 1)
        assert [g.generation_id for g in store.generations()] == [2, 3]
        assert store.active().generation_id == 3
        assert not os.path.exists(
            os.path.join(store.root, "gen-000000")
        )

    def test_active_always_survives(self, store, corpus):
        self._publish_n(store, corpus, 3)
        # Repoint active at the oldest generation by hand, then prune.
        with open(store.manifest_path) as handle:
            raw = json.load(handle)
        raw["active"] = 0
        with open(store.manifest_path, "w") as handle:
            json.dump(raw, handle)
        store.prune(keep=1)
        remaining = [g.generation_id for g in store.generations()]
        assert 0 in remaining
        assert store.active().generation_id == 0

    def test_orphan_directories_swept(self, store, corpus):
        self._publish_n(store, corpus, 2)
        orphan = os.path.join(store.root, "gen-000099")
        os.makedirs(orphan)
        store.prune(keep=2)
        assert not os.path.exists(orphan)

    def test_stale_manifest_tmp_files_swept(self, store, corpus):
        """A crash mid-manifest-write strands a tmp file; prune eats it."""
        self._publish_n(store, corpus, 2)
        stale = os.path.join(store.root, "generations.jsonabc123.tmp")
        with open(stale, "w") as handle:
            handle.write("{}")
        store.prune(keep=2)
        assert not os.path.exists(stale)
        # The real manifest is untouched.
        assert store.active().generation_id == 1

    def test_keep_must_be_positive(self, store, corpus):
        self._publish_n(store, corpus, 1)
        with pytest.raises(ValueError, match="keep"):
            store.prune(keep=0)


class TestPrepareCommit:
    def test_prepare_does_not_activate(self, store, corpus):
        store.publish(
            BruteForceIndex(corpus), np.arange(20), next_row_id=20
        )
        pending = store.prepare(
            BruteForceIndex(corpus[:10]),
            np.arange(10),
            next_row_id=20,
            reason="size",
        )
        # The directory is durably on disk, the manifest still points
        # at the old generation — exactly the crash window a resume
        # must survive.
        assert os.path.exists(pending.snapshot_path)
        assert os.path.exists(pending.ids_path)
        assert store.active().generation_id == 0
        assert [g.generation_id for g in store.generations()] == [0]

    def test_commit_activates_and_names_the_wal(self, store, corpus):
        pending = store.prepare(
            BruteForceIndex(corpus), np.arange(20), next_row_id=20
        )
        info = store.commit(pending)
        assert info.generation_id == pending.generation_id == 0
        active = store.active()
        assert active.generation_id == 0
        assert os.path.basename(active.wal_path) == "wal.log"
        with open(store.manifest_path) as handle:
            raw = json.load(handle)
        assert raw["generations"][0]["wal"] == "wal.log"

    def test_commit_refuses_stale_prepare(self, store, corpus):
        first = store.prepare(
            BruteForceIndex(corpus), np.arange(20), next_row_id=20
        )
        store.publish(
            BruteForceIndex(corpus), np.arange(20), next_row_id=20
        )
        with pytest.raises(GenerationError, match="stale"):
            store.commit(first)

    def test_commit_refuses_unprepared_info(self, store, corpus):
        pending = store.prepare(
            BruteForceIndex(corpus), np.arange(20), next_row_id=20
        )
        import shutil

        shutil.rmtree(pending.directory)
        with pytest.raises(GenerationError, match="never prepared"):
            store.commit(pending)

    def test_prepared_orphan_swept_and_id_reused(self, store, corpus):
        """An uncommitted prepare is invisible: the id is reallocated
        by the next prepare and the stale directory is overwritten."""
        store.publish(
            BruteForceIndex(corpus), np.arange(20), next_row_id=20
        )
        orphan = store.prepare(
            BruteForceIndex(corpus[:5]), np.arange(5), next_row_id=20
        )
        retry = store.prepare(
            BruteForceIndex(corpus[:10]), np.arange(10), next_row_id=20
        )
        assert retry.generation_id == orphan.generation_id
        store.commit(retry)
        assert store.active().n_points == 10
        store.prune(keep=2)
        assert [g.generation_id for g in store.generations()] == [0, 1]
