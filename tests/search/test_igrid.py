"""Tests for the IGrid index."""

import numpy as np
import pytest

from repro.search.igrid import IGridIndex


class TestIGridIndex:
    def test_self_query_is_top_hit_with_full_similarity(self, rng):
        points = rng.normal(size=(100, 6))
        index = IGridIndex(points, ranges_per_dim=4)
        result = index.query(points[7], k=1)
        assert result.neighbors[0].index == 7
        # Self-similarity: every dimension shares its range at closeness 1.
        assert -result.neighbors[0].distance == pytest.approx(6.0)

    def test_similarity_symmetric(self, rng):
        points = rng.normal(size=(60, 5))
        index = IGridIndex(points, ranges_per_dim=3)
        a, b = points[3], points[11]
        assert index.similarity(a, b) == pytest.approx(index.similarity(b, a))

    def test_similarity_bounds(self, rng):
        points = rng.normal(size=(60, 5))
        index = IGridIndex(points, ranges_per_dim=3)
        for i in range(0, 20, 3):
            value = index.similarity(points[i], points[i + 1])
            assert 0.0 <= value <= 5.0

    def test_identical_points_reach_maximum(self, rng):
        points = rng.normal(size=(30, 4))
        index = IGridIndex(points)
        assert index.similarity(points[0], points[0]) == pytest.approx(4.0)

    def test_query_scores_match_similarity_function(self, rng):
        points = rng.normal(size=(50, 4))
        index = IGridIndex(points, ranges_per_dim=4)
        query = rng.normal(size=4)
        result = index.query(query, k=5)
        for neighbor in result.neighbors:
            assert -neighbor.distance == pytest.approx(
                index.similarity(query, points[neighbor.index]), abs=1e-9
            )

    def test_results_sorted_by_similarity_then_index(self, rng):
        points = rng.normal(size=(80, 3))
        index = IGridIndex(points)
        result = index.query(rng.normal(size=3), k=10)
        similarities = -result.distances
        assert np.all(np.diff(similarities) <= 1e-12)

    def test_ranked_like_euclidean_nearby(self, rng):
        # IGrid is not Euclidean, but a point's very nearest Euclidean
        # neighbor (well inside shared ranges) should rank highly.
        centers = rng.normal(size=(5, 6)) * 10
        labels = rng.integers(0, 5, size=200)
        points = centers[labels] + rng.normal(size=(200, 6)) * 0.3
        index = IGridIndex(points, ranges_per_dim=5)
        hits = 0
        for i in range(0, 40, 4):
            result = index.query(points[i], k=4)
            neighbor_labels = [labels[j] for j in result.indices if j != i]
            hits += sum(1 for l in neighbor_labels if l == labels[i])
        assert hits / 30 > 0.8

    def test_equidepth_ranges_balance_occupancy(self, rng):
        # Skewed data: equi-depth ranges keep roughly n/k points each.
        points = np.exp(rng.normal(size=(400, 1)) * 2)
        index = IGridIndex(points, ranges_per_dim=4)
        occupancy = [lst.size for lst in index._lists[0]]
        assert max(occupancy) <= 2 * min(occupancy) + 2

    def test_outlier_query_lands_in_outer_range(self, rng):
        points = rng.uniform(size=(50, 2))
        index = IGridIndex(points, ranges_per_dim=4)
        result = index.query(np.array([100.0, 100.0]), k=1)
        # Far outside: shares the top range, closeness clipped to >= 0.
        assert len(result.neighbors) == 1
        assert -result.neighbors[0].distance >= 0.0

    def test_stats_track_candidates(self, rng):
        points = rng.normal(size=(100, 4))
        index = IGridIndex(points, ranges_per_dim=4)
        result = index.query(points[0], k=3)
        assert result.stats.points_scanned + result.stats.nodes_pruned == 100
        assert result.stats.nodes_visited == 4  # one list per dimension

    def test_discrimination_survives_high_dimensionality(self, rng):
        # The IGrid claim: similarity variance stays useful as d grows.
        points = rng.uniform(size=(200, 100))
        index = IGridIndex(points, ranges_per_dim=4)
        query = rng.uniform(size=100)
        result = index.query(query, k=200)
        similarities = -result.distances
        spread = similarities.max() - similarities.min()
        assert spread > 2.0  # many dimensions of spread, not a collapse

    def test_rejects_bad_parameters(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="ranges_per_dim"):
            IGridIndex(points, ranges_per_dim=1)
        with pytest.raises(ValueError, match="p must"):
            IGridIndex(points, p=0.0)

    def test_rejects_bad_query(self, rng):
        index = IGridIndex(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="query"):
            index.query(np.zeros(2), k=1)
