"""Tests for the STR R-tree index."""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.rtree import RTreeIndex, _mindist_squared


class TestMindist:
    def test_inside_box_is_zero(self):
        lower, upper = np.zeros(2), np.ones(2)
        assert _mindist_squared(lower, upper, np.array([0.5, 0.5])) == 0.0

    def test_outside_along_one_axis(self):
        lower, upper = np.zeros(2), np.ones(2)
        assert _mindist_squared(lower, upper, np.array([2.0, 0.5])) == pytest.approx(1.0)

    def test_corner_distance(self):
        lower, upper = np.zeros(2), np.ones(2)
        assert _mindist_squared(lower, upper, np.array([2.0, 3.0])) == pytest.approx(5.0)

    def test_boundary_is_zero(self):
        lower, upper = np.zeros(2), np.ones(2)
        assert _mindist_squared(lower, upper, np.array([1.0, 0.0])) == 0.0


class TestRTreeIndex:
    def test_agrees_with_bruteforce(self, rng):
        points = rng.normal(size=(400, 5))
        tree = RTreeIndex(points, page_size=16)
        reference = BruteForceIndex(points)
        for _ in range(20):
            query = rng.normal(size=5)
            ours = tree.query(query, k=7)
            expected = reference.query(query, k=7)
            assert np.array_equal(ours.indices, expected.indices)
            assert np.allclose(ours.distances, expected.distances)

    def test_agrees_with_ties(self, rng):
        points = rng.integers(0, 3, size=(90, 3)).astype(float)
        tree = RTreeIndex(points, page_size=8)
        reference = BruteForceIndex(points)
        for _ in range(10):
            query = rng.integers(0, 3, size=3).astype(float)
            assert np.array_equal(
                tree.query(query, k=5).indices,
                reference.query(query, k=5).indices,
            )

    def test_tree_height_grows_with_corpus(self, rng):
        small = RTreeIndex(rng.normal(size=(10, 2)), page_size=8)
        large = RTreeIndex(rng.normal(size=(2000, 2)), page_size=8)
        assert large.height > small.height

    def test_single_point(self):
        tree = RTreeIndex([[3.0, 4.0]])
        result = tree.query([0.0, 0.0], k=1)
        assert result.neighbors[0].distance == pytest.approx(5.0)

    def test_duplicates(self):
        tree = RTreeIndex(np.ones((20, 3)), page_size=4)
        result = tree.query(np.ones(3), k=4)
        assert list(result.indices) == [0, 1, 2, 3]

    def test_prunes_in_low_dimensions(self, rng):
        points = rng.uniform(size=(3000, 2))
        tree = RTreeIndex(points, page_size=32)
        result = tree.query(np.array([0.5, 0.5]), k=1)
        assert result.stats.points_scanned < 500
        assert result.stats.nodes_pruned > 0

    def test_pruning_collapses_in_high_dimensions(self, rng):
        points = rng.uniform(size=(3000, 60))
        tree = RTreeIndex(points, page_size=32)
        result = tree.query(rng.uniform(size=60), k=1)
        assert result.stats.points_scanned > 1500

    def test_rejects_small_page_size(self, rng):
        with pytest.raises(ValueError, match="page_size"):
            RTreeIndex(rng.normal(size=(5, 2)), page_size=1)

    def test_rejects_bad_query(self, rng):
        tree = RTreeIndex(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="query"):
            tree.query(np.zeros(2), k=1)

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(50, 4))
        tree = RTreeIndex(points, page_size=8)
        reference = BruteForceIndex(points)
        query = rng.normal(size=4)
        assert np.array_equal(
            tree.query(query, k=50).indices,
            reference.query(query, k=50).indices,
        )

    def test_one_dimensional_corpus(self, rng):
        points = rng.normal(size=(100, 1))
        tree = RTreeIndex(points, page_size=8)
        reference = BruteForceIndex(points)
        query = rng.normal(size=1)
        assert np.array_equal(
            tree.query(query, k=3).indices, reference.query(query, k=3).indices
        )
