"""Range queries must agree exactly across all index structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.search.bruteforce import BruteForceIndex
from repro.search.kdtree import KdTreeIndex
from repro.search.rtree import RTreeIndex
from repro.search.vafile import VAFileIndex

_INDEXES = [
    lambda pts: BruteForceIndex(pts),
    lambda pts: KdTreeIndex(pts, leaf_size=4),
    lambda pts: RTreeIndex(pts, page_size=4),
    lambda pts: VAFileIndex(pts, bits_per_dim=3),
]


class TestRangeQueryBasics:
    def test_known_answer_on_line(self):
        points = np.array([[0.0], [1.0], [2.0], [5.0]])
        for make in _INDEXES:
            result = make(points).range_query([0.9], radius=1.2)
            assert list(result.indices) == [1, 0, 2]

    def test_zero_radius_finds_exact_matches(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0], [1.0, 2.0]])
        for make in _INDEXES:
            result = make(points).range_query([1.0, 2.0], radius=0.0)
            assert list(result.indices) == [0, 2]

    def test_radius_covers_everything(self, rng):
        points = rng.normal(size=(50, 3))
        for make in _INDEXES:
            result = make(points).range_query(np.zeros(3), radius=1e6)
            assert result.indices.size == 50

    def test_empty_result(self, rng):
        points = rng.normal(size=(30, 3))
        for make in _INDEXES:
            result = make(points).range_query(np.full(3, 100.0), radius=0.5)
            assert result.indices.size == 0

    def test_distances_sorted_and_within_radius(self, rng):
        points = rng.normal(size=(80, 4))
        for make in _INDEXES:
            result = make(points).range_query(rng.normal(size=4), radius=2.0)
            assert np.all(np.diff(result.distances) >= 0.0)
            assert np.all(result.distances <= 2.0 + 1e-9)

    def test_negative_radius_rejected(self, rng):
        points = rng.normal(size=(10, 2))
        for make in _INDEXES:
            with pytest.raises(ValueError, match="radius"):
                make(points).range_query(np.zeros(2), radius=-1.0)

    def test_tree_indexes_prune(self, rng):
        points = rng.uniform(size=(2000, 2))
        for make in _INDEXES[1:3]:  # kd-tree and R-tree
            result = make(points).range_query(np.array([0.5, 0.5]), radius=0.05)
            assert result.stats.points_scanned < 1000


@st.composite
def range_cases(draw):
    n = draw(st.integers(2, 30))
    d = draw(st.integers(1, 4))
    elements = st.floats(
        min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
    )
    corpus = draw(arrays(np.float64, (n, d), elements=elements))
    query = draw(arrays(np.float64, (d,), elements=elements))
    radius = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
    return corpus, query, radius


class TestRangeQueryAgreement:
    @given(range_cases())
    @settings(max_examples=80, deadline=None)
    def test_all_indexes_agree_with_bruteforce(self, case):
        corpus, query, radius = case
        expected = BruteForceIndex(corpus).range_query(query, radius)
        for make in _INDEXES[1:]:
            actual = make(corpus).range_query(query, radius)
            assert np.array_equal(actual.indices, expected.indices)
