"""Tests for the E2LSH approximate index and its multi-probe extension."""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.lsh import LshIndex
from repro.search.snapshot import _MAGIC


def rewrite_as_v1_snapshot(path, drop=()):
    """Re-stamp a snapshot as format version 1, dropping new members.

    Reconstructs what a pre-multi-probe writer produced, so the
    legacy-load paths are exercised against a faithful v1 file.
    """
    with np.load(path) as data:
        arrays = {name: data[name] for name in data.files}
    for name in drop:
        del arrays[name]
    arrays["__version__"] = np.int64(1)
    np.savez(path, **arrays)
    with np.load(path) as data:
        assert bytes(data["__magic__"]) == _MAGIC  # still a snapshot


@pytest.fixture()
def clustered_points(rng):
    # Clustered data: LSH has easy wins when neighbors are genuinely close.
    centers = rng.normal(size=(10, 6)) * 20.0
    labels = rng.integers(0, 10, size=400)
    return centers[labels] + rng.normal(size=(400, 6))


class TestLshIndex:
    def test_self_query_finds_self(self, clustered_points):
        index = LshIndex(clustered_points, bucket_width=4.0, seed=0)
        result = index.query(clustered_points[5], k=1)
        assert result.neighbors[0].index == 5

    def test_results_sorted_and_exactly_ranked(self, clustered_points):
        index = LshIndex(clustered_points, bucket_width=4.0, seed=0)
        result = index.query(clustered_points[0], k=5)
        assert np.all(np.diff(result.distances) >= 0.0)
        # Every returned distance is the true distance.
        for neighbor in result.neighbors:
            true = float(
                np.linalg.norm(clustered_points[neighbor.index] - clustered_points[0])
            )
            assert neighbor.distance == pytest.approx(true)

    def test_recall_reasonable_on_clustered_data(self, clustered_points, rng):
        index = LshIndex(
            clustered_points, n_tables=12, n_hashes=4, bucket_width=4.0, seed=0
        )
        queries = clustered_points[rng.choice(400, size=25, replace=False)]
        recall = index.recall_against_exact(queries, k=3)
        assert recall > 0.7

    def test_scans_fewer_points_than_bruteforce(self, clustered_points):
        index = LshIndex(
            clustered_points, n_tables=6, n_hashes=6, bucket_width=3.0, seed=0
        )
        result = index.query(clustered_points[3], k=3)
        assert result.stats.points_scanned < 400

    def test_more_hashes_fewer_candidates(self, clustered_points):
        loose = LshIndex(clustered_points, n_hashes=2, bucket_width=4.0, seed=0)
        tight = LshIndex(clustered_points, n_hashes=8, bucket_width=4.0, seed=0)
        query = clustered_points[7]
        assert (
            tight.candidates(query).size <= loose.candidates(query).size
        )

    def test_may_return_fewer_than_k(self, rng):
        # A far-away query can land in an empty bucket: approximation.
        points = rng.normal(size=(50, 4))
        index = LshIndex(points, n_tables=1, n_hashes=10, bucket_width=0.1, seed=0)
        result = index.query(np.full(4, 1000.0), k=5)
        assert len(result.neighbors) <= 5  # possibly zero — and that is OK

    def test_deterministic_given_seed(self, clustered_points):
        a = LshIndex(clustered_points, seed=3).query(clustered_points[0], k=4)
        b = LshIndex(clustered_points, seed=3).query(clustered_points[0], k=4)
        assert np.array_equal(a.indices, b.indices)

    def test_rejects_bad_parameters(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            LshIndex(points, n_tables=0)
        with pytest.raises(ValueError):
            LshIndex(points, n_hashes=0)
        with pytest.raises(ValueError, match="bucket_width"):
            LshIndex(points, bucket_width=0.0)

    def test_stats_account_for_pruning(self, clustered_points):
        index = LshIndex(clustered_points, bucket_width=4.0, seed=0)
        result = index.query(clustered_points[0], k=3)
        assert (
            result.stats.points_scanned + result.stats.nodes_pruned
            == index.n_points
        )

    def test_wide_buckets_approach_exact(self, rng):
        # Huge buckets put everything in one bucket: recall 1, full scan.
        points = rng.normal(size=(100, 3))
        index = LshIndex(points, n_tables=2, n_hashes=2, bucket_width=1e6, seed=0)
        expected = BruteForceIndex(points).query(points[0], k=5)
        actual = index.query(points[0], k=5)
        assert np.array_equal(actual.indices, expected.indices)


class TestMultiProbe:
    # A private generator (not the session rng): the recall comparisons
    # below depend on the sampled corpus, so the data must not shift
    # with test execution order.
    def fixed_corpus_and_queries(self, n_queries=40):
        local = np.random.default_rng(77)
        centers = local.normal(size=(10, 6)) * 20.0
        labels = local.integers(0, 10, size=400)
        points = centers[labels] + local.normal(size=(400, 6))
        queries = points[
            local.choice(400, size=n_queries, replace=False)
        ] + 0.1 * local.normal(size=(n_queries, 6))
        return points, queries

    def test_candidates_grow_as_prefix_supersets(self, clustered_points):
        # The probe sequence is a fixed ranking of perturbations, so a
        # larger n_probes examines a strict prefix-extension of the same
        # buckets: candidate sets must be nested supersets.
        query = clustered_points[11]
        previous = set()
        for n_probes in (1, 2, 4, 8, 16):
            index = LshIndex(
                clustered_points, n_tables=4, n_hashes=6,
                bucket_width=2.0, seed=7, n_probes=n_probes,
            )
            current = set(index.candidates(query).tolist())
            assert previous <= current, f"lost candidates at T={n_probes}"
            previous = current

    def test_recall_monotone_in_probes(self):
        points, queries = self.fixed_corpus_and_queries()
        reference = BruteForceIndex(points)
        recalls = []
        for n_probes in (1, 4, 16):
            index = LshIndex(
                points, n_tables=4, n_hashes=6,
                bucket_width=4.0, seed=7, n_probes=n_probes,
            )
            recalls.append(
                index.recall_against_exact(queries, k=3, reference=reference)
            )
        # Nested candidate sets make recall exactly non-decreasing.
        assert recalls == sorted(recalls)
        # And probing must actually help on clustered data at this width.
        assert recalls[-1] > recalls[0]

    def test_probing_matches_more_tables_with_fewer(self):
        # The multi-probe trade: T probes over L/4 tables should reach
        # at least the recall of single-probe over L tables.
        points, queries = self.fixed_corpus_and_queries()
        reference = BruteForceIndex(points)
        single = LshIndex(
            points, n_tables=16, n_hashes=6,
            bucket_width=4.0, seed=3, n_probes=1,
        )
        probed = LshIndex(
            points, n_tables=4, n_hashes=6,
            bucket_width=4.0, seed=3, n_probes=8,
        )
        assert probed.recall_against_exact(
            queries, k=3, reference=reference
        ) >= single.recall_against_exact(queries, k=3, reference=reference)

    def test_probed_results_still_exactly_ranked(self, clustered_points):
        index = LshIndex(
            clustered_points, bucket_width=4.0, seed=0, n_probes=8
        )
        result = index.query(clustered_points[0], k=5)
        assert np.all(np.diff(result.distances) >= 0.0)
        for neighbor in result.neighbors:
            true = float(np.linalg.norm(
                clustered_points[neighbor.index] - clustered_points[0]
            ))
            assert neighbor.distance == pytest.approx(true)

    def test_effective_probes_capped_by_pool(self, rng):
        points = rng.normal(size=(60, 4))
        index = LshIndex(points, n_hashes=2, n_probes=10**6, seed=0)
        # 2 hashes -> 4 boundary ranks -> a small valid perturbation
        # pool; the index probes what exists and no more.
        assert 1 <= index.effective_probes <= 10**6
        result = index.query(points[0], k=3)
        assert result.stats.nodes_visited == (
            index.n_tables * index.effective_probes
        )

    def test_stats_account_for_probing(self, clustered_points):
        index = LshIndex(
            clustered_points, bucket_width=4.0, seed=0, n_probes=4
        )
        result = index.query(clustered_points[0], k=3)
        stats = result.stats
        assert stats.points_scanned + stats.nodes_pruned == index.n_points
        assert stats.nodes_visited == index.n_tables * index.effective_probes
        # Funnel width counts every bucket member before dedup, so it
        # can only meet or exceed the distinct points refined.
        assert stats.candidates_generated >= stats.points_scanned

    def test_batch_stats_sum_candidates_generated(self, clustered_points):
        index = LshIndex(
            clustered_points, bucket_width=4.0, seed=0, n_probes=4
        )
        queries = clustered_points[:7]
        batch = index.query_batch(queries, k=3)
        assert batch.stats.candidates_generated == sum(
            r.stats.candidates_generated for r in batch.results
        )

    def test_rejects_bad_n_probes(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="n_probes"):
            LshIndex(points, n_probes=0)

    def test_rejects_bad_refine_kernel(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="refine_kernel"):
            LshIndex(points, refine_kernel="nope")

    def test_single_probe_unchanged_from_default(self, clustered_points):
        # n_probes=1 is the pre-multi-probe behavior, bit for bit.
        base = LshIndex(clustered_points, bucket_width=4.0, seed=0)
        explicit = LshIndex(
            clustered_points, bucket_width=4.0, seed=0, n_probes=1
        )
        queries = clustered_points[:9]
        a = base.query_batch(queries, k=4)
        b = explicit.query_batch(queries, k=4)
        for got, expected in zip(a, b):
            assert np.array_equal(got.indices, expected.indices)
            assert got.distances.tolist() == expected.distances.tolist()


class TestMultiProbeSnapshots:
    def test_n_probes_round_trips(self, clustered_points, tmp_path, rng):
        index = LshIndex(
            clustered_points, bucket_width=4.0, seed=0, n_probes=6
        )
        path = str(tmp_path / "lsh-v2.npz")
        index.save(path)
        loaded = LshIndex.load(path)
        assert loaded.n_probes == 6
        assert loaded.effective_probes == index.effective_probes
        queries = clustered_points[:11]
        a = index.query_batch(queries, k=4)
        b = loaded.query_batch(queries, k=4)
        for got, expected in zip(b, a):
            assert np.array_equal(got.indices, expected.indices)
            assert got.distances.tolist() == expected.distances.tolist()
            assert got.stats == expected.stats

    def test_legacy_v1_snapshot_defaults_to_one_probe(
        self, clustered_points, tmp_path
    ):
        index = LshIndex(
            clustered_points, bucket_width=4.0, seed=0, n_probes=8
        )
        path = str(tmp_path / "lsh-v1.npz")
        index.save(path)
        rewrite_as_v1_snapshot(path, drop=("n_probes",))
        loaded = LshIndex.load(path)
        assert loaded.n_probes == 1
        # A v1 file answers exactly as the single-probe index it was.
        single = LshIndex(
            clustered_points, bucket_width=4.0, seed=0, n_probes=1
        )
        queries = clustered_points[:9]
        a = loaded.query_batch(queries, k=3)
        b = single.query_batch(queries, k=3)
        for got, expected in zip(a, b):
            assert np.array_equal(got.indices, expected.indices)
            assert got.distances.tolist() == expected.distances.tolist()
