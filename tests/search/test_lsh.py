"""Tests for the E2LSH approximate index."""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.lsh import LshIndex


@pytest.fixture()
def clustered_points(rng):
    # Clustered data: LSH has easy wins when neighbors are genuinely close.
    centers = rng.normal(size=(10, 6)) * 20.0
    labels = rng.integers(0, 10, size=400)
    return centers[labels] + rng.normal(size=(400, 6))


class TestLshIndex:
    def test_self_query_finds_self(self, clustered_points):
        index = LshIndex(clustered_points, bucket_width=4.0, seed=0)
        result = index.query(clustered_points[5], k=1)
        assert result.neighbors[0].index == 5

    def test_results_sorted_and_exactly_ranked(self, clustered_points):
        index = LshIndex(clustered_points, bucket_width=4.0, seed=0)
        result = index.query(clustered_points[0], k=5)
        assert np.all(np.diff(result.distances) >= 0.0)
        # Every returned distance is the true distance.
        for neighbor in result.neighbors:
            true = float(
                np.linalg.norm(clustered_points[neighbor.index] - clustered_points[0])
            )
            assert neighbor.distance == pytest.approx(true)

    def test_recall_reasonable_on_clustered_data(self, clustered_points, rng):
        index = LshIndex(
            clustered_points, n_tables=12, n_hashes=4, bucket_width=4.0, seed=0
        )
        queries = clustered_points[rng.choice(400, size=25, replace=False)]
        recall = index.recall_against_exact(queries, k=3)
        assert recall > 0.7

    def test_scans_fewer_points_than_bruteforce(self, clustered_points):
        index = LshIndex(
            clustered_points, n_tables=6, n_hashes=6, bucket_width=3.0, seed=0
        )
        result = index.query(clustered_points[3], k=3)
        assert result.stats.points_scanned < 400

    def test_more_hashes_fewer_candidates(self, clustered_points):
        loose = LshIndex(clustered_points, n_hashes=2, bucket_width=4.0, seed=0)
        tight = LshIndex(clustered_points, n_hashes=8, bucket_width=4.0, seed=0)
        query = clustered_points[7]
        assert (
            tight.candidates(query).size <= loose.candidates(query).size
        )

    def test_may_return_fewer_than_k(self, rng):
        # A far-away query can land in an empty bucket: approximation.
        points = rng.normal(size=(50, 4))
        index = LshIndex(points, n_tables=1, n_hashes=10, bucket_width=0.1, seed=0)
        result = index.query(np.full(4, 1000.0), k=5)
        assert len(result.neighbors) <= 5  # possibly zero — and that is OK

    def test_deterministic_given_seed(self, clustered_points):
        a = LshIndex(clustered_points, seed=3).query(clustered_points[0], k=4)
        b = LshIndex(clustered_points, seed=3).query(clustered_points[0], k=4)
        assert np.array_equal(a.indices, b.indices)

    def test_rejects_bad_parameters(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            LshIndex(points, n_tables=0)
        with pytest.raises(ValueError):
            LshIndex(points, n_hashes=0)
        with pytest.raises(ValueError, match="bucket_width"):
            LshIndex(points, bucket_width=0.0)

    def test_stats_account_for_pruning(self, clustered_points):
        index = LshIndex(clustered_points, bucket_width=4.0, seed=0)
        result = index.query(clustered_points[0], k=3)
        assert (
            result.stats.points_scanned + result.stats.nodes_pruned
            == index.n_points
        )

    def test_wide_buckets_approach_exact(self, rng):
        # Huge buckets put everything in one bucket: recall 1, full scan.
        points = rng.normal(size=(100, 3))
        index = LshIndex(points, n_tables=2, n_hashes=2, bucket_width=1e6, seed=0)
        expected = BruteForceIndex(points).query(points[0], k=5)
        actual = index.query(points[0], k=5)
        assert np.array_equal(actual.indices, expected.indices)
