"""Projection-screened exact search: bit-identity is the contract.

The index may prune however it likes in the reduced space, but every
answer — neighbor indices, distance bytes, lower-index tie-breaks —
must match :class:`BruteForceIndex` exactly, on every corpus, at every
``k``, standalone and after a snapshot round-trip.  The tests here also
pin the stats contract (reduced rows vs refined rows, no double-count
across batch blocks) and the validation surface (oblique projections,
bad orderings, out-of-range subspace dimensions).
"""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.projected import (
    ProjectionScreenedIndex,
    ProjectionSpec,
    default_subspace_dim,
    fit_projection,
)
from repro.search.recall import ExactnessViolation, recall_against_exact


def adversarial_corpora(rng):
    """Corpora where a sloppy screen diverges first."""
    base = rng.normal(size=(30, 6))
    correlated = rng.normal(size=(80, 3)) @ rng.normal(size=(3, 12))
    correlated += 0.05 * rng.normal(size=(80, 12))
    return {
        "random": rng.normal(size=(70, 8)),
        "correlated": correlated,
        "duplicates": np.concatenate([base, base[:15]]),
        "axis_ties": np.repeat(rng.normal(size=(12, 5)), 4, axis=0),
        "single_point": rng.normal(size=(1, 3)),
        "d1": rng.normal(size=(40, 1)),
        "zero_variance": np.ones((25, 4)),
        "huge_scale": rng.normal(size=(50, 6)) * 1e8,
    }


def assert_bit_identical(index, reference, queries, k):
    got = index.query_batch(queries, k=k)
    expected = reference.query_batch(queries, k=k)
    assert np.array_equal(got.indices, expected.indices)
    assert got.distances.tobytes() == expected.distances.tobytes()
    # The single-query path shares the block core; spot-check it.
    one = index.query(queries[0], k=k)
    ref_one = reference.query(queries[0], k=k)
    assert np.array_equal(one.indices, ref_one.indices)
    assert one.distances.tobytes() == ref_one.distances.tobytes()


class TestBitIdentity:
    @pytest.mark.parametrize("ordering", ["eigen", "coherence"])
    def test_matches_bruteforce_everywhere(self, ordering, rng):
        for name, corpus in adversarial_corpora(rng).items():
            n, d = corpus.shape
            index = ProjectionScreenedIndex(corpus, ordering=ordering)
            reference = BruteForceIndex(corpus)
            queries = np.concatenate(
                [corpus[:3], rng.normal(size=(5, d)) * corpus.std()]
            )
            for k in {1, min(3, n), n}:
                assert_bit_identical(index, reference, queries, k)

    def test_tie_break_by_lower_index(self):
        index = ProjectionScreenedIndex([[1.0, 0.0]] * 4, subspace_dim=1)
        assert list(index.query([0.0, 0.0], k=3).indices) == [0, 1, 2]

    def test_every_subspace_dim_is_exact(self, rng):
        corpus = rng.normal(size=(60, 5))
        reference = BruteForceIndex(corpus)
        queries = rng.normal(size=(7, 5))
        for m in range(1, 6):
            index = ProjectionScreenedIndex(corpus, subspace_dim=m)
            assert index.subspace_dim == m
            assert_bit_identical(index, reference, queries, 4)

    def test_recall_contract_is_exact(self, rng):
        corpus = rng.normal(size=(50, 8))
        index = ProjectionScreenedIndex(corpus, subspace_dim=2)
        assert index.recall_against_exact(rng.normal(size=(10, 8)), k=5) == 1.0


class TestStatsAccounting:
    def test_reduced_vs_refined_split(self, rng):
        corpus = rng.normal(size=(80, 3)) @ rng.normal(size=(3, 12))
        index = ProjectionScreenedIndex(corpus, subspace_dim=3)
        result = index.query(corpus[0], k=3)
        stats = result.stats
        assert stats.reduced_rows_scanned == 80
        assert 3 <= stats.points_scanned <= 80
        assert stats.nodes_pruned == 80 - stats.points_scanned
        # pruning_fraction audits refinements, not reduced scans.
        assert stats.pruning_fraction(80) == 1.0 - stats.points_scanned / 80

    def test_no_double_count_across_batch_blocks(self, rng):
        corpus = rng.normal(size=(60, 3)) @ rng.normal(size=(3, 9))
        queries = rng.normal(size=(17, 9))
        whole = ProjectionScreenedIndex(corpus, subspace_dim=2)
        split = ProjectionScreenedIndex(
            corpus, projection=whole.projection
        )
        # Force many tiny blocks: the per-query stats (and answers) must
        # not change with the block split.
        split._block_entries = corpus.shape[0] * 2
        got = split.query_batch(queries, k=4)
        expected = whole.query_batch(queries, k=4)
        assert np.array_equal(got.indices, expected.indices)
        assert got.distances.tobytes() == expected.distances.tobytes()
        assert got.stats == expected.stats
        for a, b in zip(got, expected):
            assert a.stats == b.stats
        # Batch totals stay within the audit bound per query.
        assert got.stats.reduced_rows_scanned == 17 * 60
        assert got.stats.points_scanned <= 17 * 60
        got.stats.pruning_fraction(17 * 60)  # must not raise

    def test_stats_identical_across_batching(self, rng):
        # The serving layer compares per-query stats bit-for-bit between
        # the closed loop (one query() per call) and coalesced batches,
        # so the refine counters must be a pure function of each query —
        # stage 1 scores in fixed-shape chunks precisely so that BLAS
        # rounding cannot flip a borderline row with the batch shape.
        corpus = rng.normal(size=(300, 3)) @ rng.normal(size=(3, 10))
        index = ProjectionScreenedIndex(corpus, subspace_dim=3)
        queries = rng.normal(size=(50, 10))
        batch = index.query_batch(queries, k=5).results
        for row, expected in zip(queries, batch):
            got = index.query(row, k=5)
            assert got.stats == expected.stats
            assert got.indices.tolist() == expected.indices.tolist()
            assert got.distances.tobytes() == expected.distances.tobytes()

    def test_correlated_corpus_prunes_most_rows(self, rng):
        # The headline property: on correlated data at m = d/4 the
        # screen discards well over half the full-width refinements.
        corpus = rng.normal(size=(400, 4)) @ rng.normal(size=(4, 16))
        corpus += 0.05 * rng.normal(size=(400, 16))
        index = ProjectionScreenedIndex(corpus, subspace_dim=4)
        stats = index.query_batch(rng.normal(size=(20, 16)), k=3).stats
        assert stats.points_scanned / (20 * 400) < 0.5


class TestFitProjection:
    def test_default_dim_is_quarter(self):
        assert default_subspace_dim(16) == 4
        assert default_subspace_dim(3) == 1
        assert default_subspace_dim(1) == 1

    @pytest.mark.parametrize("ordering", ["eigen", "coherence"])
    def test_columns_are_orthonormal(self, ordering, rng):
        corpus = rng.normal(size=(50, 3)) @ rng.normal(size=(3, 10))
        spec = fit_projection(corpus, subspace_dim=4, ordering=ordering)
        assert spec.matrix.shape == (10, 4)
        assert spec.ordering == ordering
        assert np.allclose(
            spec.matrix.T @ spec.matrix, np.eye(4), atol=1e-10
        )

    def test_single_point_falls_back_to_axes(self):
        spec = fit_projection(np.array([[2.0, 3.0, 4.0]]), subspace_dim=2)
        assert np.array_equal(spec.matrix, np.eye(3)[:, :2])

    def test_orderings_can_differ(self, rng):
        # Not asserted equal: the coherence rule is allowed to pick a
        # different subspace than the eigenvalue rule; both must be
        # sound, which TestBitIdentity already establishes.
        corpus = rng.normal(size=(60, 3)) @ rng.normal(size=(3, 8))
        eigen = fit_projection(corpus, subspace_dim=2, ordering="eigen")
        coherent = fit_projection(
            corpus, subspace_dim=2, ordering="coherence"
        )
        assert eigen.matrix.shape == coherent.matrix.shape

    def test_rejects_bad_ordering(self, rng):
        with pytest.raises(ValueError, match="ordering"):
            fit_projection(rng.normal(size=(10, 4)), ordering="random")

    def test_rejects_out_of_range_dim(self, rng):
        with pytest.raises(ValueError, match="subspace_dim"):
            fit_projection(rng.normal(size=(10, 4)), subspace_dim=5)
        with pytest.raises(ValueError, match="subspace_dim"):
            fit_projection(rng.normal(size=(10, 4)), subspace_dim=0)


class TestValidation:
    def test_rejects_oblique_projection(self, rng):
        corpus = rng.normal(size=(20, 4))
        oblique = ProjectionSpec(
            center=np.zeros(4),
            matrix=rng.normal(size=(4, 2)),  # not orthonormal
            ordering="eigen",
        )
        with pytest.raises(ValueError, match="orthonormal"):
            ProjectionScreenedIndex(corpus, projection=oblique)

    def test_rejects_wrong_projection_shape(self, rng):
        corpus = rng.normal(size=(20, 4))
        wrong = ProjectionSpec(
            center=np.zeros(3),
            matrix=np.eye(3)[:, :2],
            ordering="eigen",
        )
        with pytest.raises(ValueError, match="projection matrix"):
            ProjectionScreenedIndex(corpus, projection=wrong)

    def test_rejects_bad_constructor_args(self, rng):
        corpus = rng.normal(size=(20, 4))
        with pytest.raises(ValueError, match="subspace_dim"):
            ProjectionScreenedIndex(corpus, subspace_dim=9)
        with pytest.raises(ValueError, match="ordering"):
            ProjectionScreenedIndex(corpus, ordering="alphabetical")

    def test_rejects_bad_queries(self, rng):
        index = ProjectionScreenedIndex(rng.normal(size=(20, 4)))
        with pytest.raises(ValueError, match="k must"):
            index.query(np.zeros(4), k=0)
        with pytest.raises(ValueError, match="query"):
            index.query(np.zeros(3), k=1)
        with pytest.raises(ValueError, match="finite"):
            index.query(np.full(4, np.nan), k=1)

    def test_properties(self, rng):
        corpus = rng.normal(size=(30, 8))
        index = ProjectionScreenedIndex(
            corpus, subspace_dim=3, ordering="coherence"
        )
        assert index.n_points == 30
        assert index.dimensionality == 8
        assert index.subspace_dim == 3
        assert index.ordering == "coherence"
        assert index.projection.matrix.shape == (8, 3)


class TestSharedRecall:
    def test_exact_flag_raises_on_shortfall(self, rng):
        corpus = rng.normal(size=(40, 5))

        class LyingIndex(BruteForceIndex):
            def query_batch(self, queries, k=1, *, n_workers=None):
                batch = super().query_batch(
                    queries, k=k, n_workers=n_workers
                )
                return batch.__class__(
                    results=(batch.results[-1],) + batch.results[1:],
                    stats=batch.stats,
                )

        liar = LyingIndex(corpus)
        with pytest.raises(ExactnessViolation, match="recall"):
            recall_against_exact(
                liar, rng.normal(size=(6, 5)), k=3, exact=True
            )

    def test_metric_mode_returns_fraction(self, rng):
        corpus = rng.normal(size=(40, 5))
        index = BruteForceIndex(corpus)
        value = recall_against_exact(index, rng.normal(size=(6, 5)), k=3)
        assert value == 1.0
