"""Tests for the iDistance index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.search.bruteforce import BruteForceIndex
from repro.search.idistance import IDistanceIndex


class TestIDistanceIndex:
    def test_agrees_with_bruteforce(self, rng):
        points = rng.normal(size=(250, 5))
        index = IDistanceIndex(points, seed=0)
        reference = BruteForceIndex(points)
        for _ in range(15):
            query = rng.normal(size=5)
            assert np.array_equal(
                index.query(query, k=5).indices,
                reference.query(query, k=5).indices,
            )

    def test_self_query(self, rng):
        points = rng.normal(size=(60, 4))
        result = IDistanceIndex(points, seed=0).query(points[9], k=1)
        assert result.neighbors[0].index == 9
        assert result.neighbors[0].distance == pytest.approx(0.0, abs=1e-12)

    def test_tie_break_by_index(self):
        points = np.ones((8, 3))
        result = IDistanceIndex(points).query(np.zeros(3), k=3)
        assert list(result.indices) == [0, 1, 2]

    def test_prunes_on_clustered_data(self, rng):
        centers = rng.normal(size=(8, 6)) * 30
        labels = rng.integers(0, 8, size=2000)
        points = centers[labels] + rng.normal(size=(2000, 6))
        index = IDistanceIndex(points, n_partitions=8, seed=0)
        result = index.query(points[5], k=3)
        assert result.stats.points_scanned < 1000

    def test_partition_count_default(self, rng):
        index = IDistanceIndex(rng.normal(size=(400, 3)))
        assert index.n_partitions == 10  # round(sqrt(400) / 2)

    def test_single_partition_degrades_gracefully(self, rng):
        points = rng.normal(size=(40, 3))
        index = IDistanceIndex(points, n_partitions=1, seed=0)
        reference = BruteForceIndex(points)
        query = rng.normal(size=3)
        assert np.array_equal(
            index.query(query, k=4).indices,
            reference.query(query, k=4).indices,
        )

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(30, 3))
        index = IDistanceIndex(points, seed=0)
        reference = BruteForceIndex(points)
        query = rng.normal(size=3)
        assert np.array_equal(
            index.query(query, k=30).indices,
            reference.query(query, k=30).indices,
        )

    def test_far_query(self, rng):
        points = rng.uniform(size=(80, 4))
        index = IDistanceIndex(points, seed=0)
        reference = BruteForceIndex(points)
        query = np.full(4, 1000.0)
        assert np.array_equal(
            index.query(query, k=3).indices,
            reference.query(query, k=3).indices,
        )

    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(ValueError, match="n_partitions"):
            IDistanceIndex(rng.normal(size=(5, 2)), n_partitions=6)
        with pytest.raises(ValueError, match="n_partitions"):
            IDistanceIndex(rng.normal(size=(5, 2)), n_partitions=0)
        index = IDistanceIndex(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="query"):
            index.query(np.zeros(2), k=1)


@st.composite
def idistance_cases(draw):
    n = draw(st.integers(2, 40))
    d = draw(st.integers(1, 5))
    elements = st.floats(
        min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
    ).map(lambda v: 0.0 if abs(v) < 1e-6 else v)
    corpus = draw(arrays(np.float64, (n, d), elements=elements))
    query = draw(arrays(np.float64, (d,), elements=elements))
    k = draw(st.integers(1, n))
    return corpus, query, k


class TestIDistanceProperties:
    @given(idistance_cases())
    @settings(max_examples=80, deadline=None)
    def test_knn_exactness(self, case):
        corpus, query, k = case
        expected = BruteForceIndex(corpus).query(query, k)
        actual = IDistanceIndex(corpus, seed=0).query(query, k)
        assert np.array_equal(actual.indices, expected.indices)
