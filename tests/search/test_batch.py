"""Batch-query engine: equivalence with sequential queries, for every index.

The batch API's contract is strict: for any corpus, query set, and ``k``,
``index.query_batch(queries, k)`` returns exactly what looping
``index.query`` would — same neighbor indices, bit-identical distances,
same tie-breaks — and its aggregate stats are the per-query sums.  These
tests exercise the contract over adversarial corpora (ties, duplicates,
extreme magnitudes) where the vectorized brute-force/VA-file paths could
plausibly diverge from the scalar arithmetic.
"""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.idistance import IDistanceIndex
from repro.search.igrid import IGridIndex
from repro.search.kdtree import KdTreeIndex
from repro.search.lsh import LshIndex
from repro.search.pyramid import PyramidIndex
from repro.search.results import BatchKnnResult, QueryStats, combine_stats
from repro.search.rtree import RTreeIndex
from repro.search.vafile import VAFileIndex

ALL_INDEXES = [
    BruteForceIndex,
    KdTreeIndex,
    RTreeIndex,
    VAFileIndex,
    PyramidIndex,
    IDistanceIndex,
    IGridIndex,
    LshIndex,
]


def assert_batch_matches_sequential(index, queries, k, **kwargs):
    batch = index.query_batch(queries, k=k, **kwargs)
    sequential = [index.query(q, k=k) for q in np.asarray(queries)]
    assert isinstance(batch, BatchKnnResult)
    assert len(batch) == len(sequential)
    for got, expected in zip(batch, sequential):
        assert tuple(got.indices.tolist()) == tuple(expected.indices.tolist())
        # Bit-identical, not approximately equal: the batch path must
        # reproduce the sequential arithmetic exactly.
        assert tuple(got.distances.tolist()) == tuple(
            expected.distances.tolist()
        )
    expected_stats = combine_stats(r.stats for r in sequential)
    assert batch.stats.points_scanned == expected_stats.points_scanned
    assert batch.stats.nodes_visited == expected_stats.nodes_visited
    assert batch.stats.nodes_pruned == expected_stats.nodes_pruned


@pytest.mark.parametrize("cls", ALL_INDEXES)
class TestBatchSequentialEquivalence:
    def test_random_cloud(self, cls, rng):
        corpus = rng.normal(size=(150, 6))
        index = cls(corpus)
        queries = rng.normal(size=(23, 6))
        assert_batch_matches_sequential(index, queries, k=5)

    def test_self_queries_with_ties(self, cls, rng):
        # Duplicated corpus rows force distance ties on every query.
        base = rng.normal(size=(40, 4))
        corpus = np.concatenate([base, base[:20]])
        index = cls(corpus)
        assert_batch_matches_sequential(index, base[:15], k=4)

    def test_all_duplicate_corpus(self, cls):
        corpus = np.ones((30, 3))
        index = cls(corpus)
        queries = np.zeros((5, 3))
        assert_batch_matches_sequential(index, queries, k=7)

    def test_k_equals_n(self, cls, rng):
        corpus = rng.normal(size=(25, 5))
        index = cls(corpus)
        assert_batch_matches_sequential(index, rng.normal(size=(4, 5)), k=25)

    def test_single_query_batch(self, cls, rng):
        corpus = rng.normal(size=(60, 8))
        index = cls(corpus)
        assert_batch_matches_sequential(index, corpus[:1], k=3)

    def test_empty_batch(self, cls, rng):
        corpus = rng.normal(size=(20, 3))
        batch = cls(corpus).query_batch(np.empty((0, 3)), k=2)
        assert len(batch) == 0
        assert batch.stats.points_scanned == 0

    def test_threaded_path_matches(self, cls, rng):
        corpus = rng.normal(size=(80, 5))
        index = cls(corpus)
        queries = rng.normal(size=(17, 5))
        assert_batch_matches_sequential(index, queries, k=3, n_workers=4)

    def test_more_workers_than_rows(self, cls, rng):
        # The fan-out is capped at the row count, and the capped path
        # must stay bit-identical.
        corpus = rng.normal(size=(60, 5))
        index = cls(corpus)
        queries = rng.normal(size=(3, 5))
        assert_batch_matches_sequential(index, queries, k=2, n_workers=16)

    def test_empty_batch_through_threaded_path(self, cls, rng):
        corpus = rng.normal(size=(20, 3))
        batch = cls(corpus).query_batch(np.empty((0, 3)), k=2, n_workers=4)
        assert len(batch) == 0
        assert batch.stats.points_scanned == 0

    def test_rejects_1d_queries(self, cls, rng):
        corpus = rng.normal(size=(20, 4))
        with pytest.raises(ValueError, match="2-d"):
            cls(corpus).query_batch(np.zeros(4), k=1)

    def test_rejects_wrong_width(self, cls, rng):
        corpus = rng.normal(size=(20, 4))
        with pytest.raises(ValueError, match="2-d"):
            cls(corpus).query_batch(np.zeros((3, 5)), k=1)

    def test_rejects_nan_queries(self, cls, rng):
        corpus = rng.normal(size=(20, 4))
        with pytest.raises(ValueError, match="finite"):
            cls(corpus).query_batch(np.full((2, 4), np.nan), k=1)

    def test_rejects_bad_n_workers(self, cls, rng):
        corpus = rng.normal(size=(20, 4))
        # Vectorized indexes ignore n_workers entirely, which is part of
        # the protocol; only the dispatching indexes validate it.
        if cls in (BruteForceIndex, VAFileIndex):
            pytest.skip("vectorized index ignores n_workers")
        with pytest.raises(ValueError, match="n_workers"):
            cls(corpus).query_batch(np.zeros((2, 4)), k=1, n_workers=0)


class TestSharedExecutor:
    def test_pool_is_process_lifetime_singleton(self):
        from repro.search.batch import _shared_executor

        assert _shared_executor() is _shared_executor()

    def test_repeated_threaded_batches_reuse_the_pool(self, rng):
        # Many small threaded batches, as a serving loop issues them;
        # all must stay bit-identical while sharing one executor.
        corpus = rng.normal(size=(50, 4))
        index = KdTreeIndex(corpus)
        for _ in range(5):
            queries = rng.normal(size=(6, 4))
            assert_batch_matches_sequential(index, queries, k=2, n_workers=3)


class TestVectorizedEdgeCases:
    """Corner cases aimed at the Gram-expansion brute-force path."""

    @pytest.mark.parametrize("cls", [BruteForceIndex, VAFileIndex])
    def test_huge_magnitudes(self, cls, rng):
        corpus = rng.normal(size=(50, 3)) * 1e18
        index = cls(corpus)
        queries = rng.normal(size=(6, 3)) * 1e18
        assert_batch_matches_sequential(index, queries, k=4)

    @pytest.mark.parametrize("cls", [BruteForceIndex, VAFileIndex])
    def test_tiny_magnitudes(self, cls, rng):
        corpus = rng.normal(size=(50, 3)) * 1e-18
        index = cls(corpus)
        queries = rng.normal(size=(6, 3)) * 1e-18
        assert_batch_matches_sequential(index, queries, k=4)

    def test_near_tie_distances(self, rng):
        # Points at almost-equal distances: the candidate margin must be
        # wide enough that the exact re-ranking sees all contenders.
        center = rng.normal(size=8)
        directions = rng.normal(size=(100, 8))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        radii = 1.0 + rng.uniform(-1e-9, 1e-9, size=(100, 1))
        corpus = center + radii * directions
        index = BruteForceIndex(corpus)
        assert_batch_matches_sequential(index, center[np.newaxis, :], k=10)

    def test_batch_larger_than_block(self, rng):
        # More query rows than one block holds, exercising the chunk loop.
        corpus = rng.normal(size=(500, 4))
        index = BruteForceIndex(corpus)
        queries = rng.normal(size=(300, 4))
        batch = index.query_batch(queries, k=2)
        assert len(batch) == 300
        sample = [0, 150, 299]
        for i in sample:
            expected = index.query(queries[i], k=2)
            assert tuple(batch[i].indices.tolist()) == tuple(
                expected.indices.tolist()
            )


class TestBatchKnnResult:
    def test_sequence_protocol(self, rng):
        corpus = rng.normal(size=(30, 3))
        index = BruteForceIndex(corpus)
        batch = index.query_batch(corpus[:5], k=2)
        assert len(batch) == 5
        assert [r.neighbors[0].index for r in batch] == [0, 1, 2, 3, 4]
        assert batch[3].neighbors[0].index == 3

    def test_matrix_views(self, rng):
        corpus = rng.normal(size=(30, 3))
        index = BruteForceIndex(corpus)
        batch = index.query_batch(corpus[:5], k=2)
        assert batch.indices.shape == (5, 2)
        assert batch.distances.shape == (5, 2)
        assert batch.indices.tolist()[0][0] == 0
        assert batch.distances[0, 0] == 0.0

    def test_aggregated_stats_sum(self, rng):
        corpus = rng.normal(size=(30, 3))
        index = BruteForceIndex(corpus)
        batch = index.query_batch(corpus[:5], k=2)
        assert batch.stats.points_scanned == 5 * 30

    def test_combine_stats_empty(self):
        total = combine_stats([])
        assert total == QueryStats()


class TestRefineKernels:
    """The fused gemm kernel must agree with the gather kernel bit for bit.

    ``refine_masked_candidates`` is the shared exact-refinement core for
    every masked index path; the two kernels differ only in how they
    traverse memory, so their outputs — indices, squared distances,
    candidate counts — must be indistinguishable on any mask, including
    empty rows, ties, duplicates, and rows narrower than ``k``.
    """

    def assert_kernels_agree(self, corpus, rows, mask, k):
        from repro.search.batch import refine_masked_candidates

        gather = refine_masked_candidates(corpus, rows, mask, k)
        gemm = refine_masked_candidates(corpus, rows, mask, k, kernel="gemm")
        for got, expected in zip(gemm, gather):
            assert np.array_equal(got, expected)
        # Bit-identical, not almost-equal: the padded distances are
        # +inf in both, the real ones must match exactly.
        assert gemm[1].tolist() == gather[1].tolist()

    def test_random_masks(self, rng):
        for trial in range(10):
            n, d = int(rng.integers(20, 300)), int(rng.integers(2, 12))
            corpus = rng.normal(size=(n, d)) * rng.uniform(0.01, 100.0)
            rows = rng.normal(size=(int(rng.integers(1, 40)), d))
            mask = rng.random((rows.shape[0], n)) < rng.uniform(0.01, 0.9)
            self.assert_kernels_agree(corpus, rows, mask, int(rng.integers(1, 8)))

    def test_tie_heavy_corpus(self, rng):
        base = rng.normal(size=(40, 3))
        corpus = np.vstack([base, base, base])  # every point thrice
        rows = base[:9]
        mask = np.ones((9, corpus.shape[0]), dtype=bool)
        self.assert_kernels_agree(corpus, rows, mask, 7)

    def test_rows_with_no_candidates(self, rng):
        corpus = rng.normal(size=(60, 4))
        rows = rng.normal(size=(5, 4))
        mask = np.zeros((5, 60), dtype=bool)
        mask[2, [4, 9]] = True  # one sparse row, the rest empty
        self.assert_kernels_agree(corpus, rows, mask, 5)

    def test_fewer_candidates_than_k(self, rng):
        corpus = rng.normal(size=(30, 5))
        rows = rng.normal(size=(4, 5))
        mask = np.zeros((4, 30), dtype=bool)
        mask[:, :3] = True  # 3 candidates, k=6
        self.assert_kernels_agree(corpus, rows, mask, 6)

    def test_block_boundaries(self, rng):
        # More rows than one 32-row tile and more union columns than one
        # 512-column tile, so both tiling loops run multiple iterations.
        corpus = rng.normal(size=(1200, 4))
        rows = rng.normal(size=(70, 4))
        mask = rng.random((70, 1200)) < 0.8
        self.assert_kernels_agree(corpus, rows, mask, 5)

    def test_rejects_unknown_kernel(self, rng):
        from repro.search.batch import refine_masked_candidates

        corpus = rng.normal(size=(10, 2))
        rows = rng.normal(size=(2, 2))
        mask = np.ones((2, 10), dtype=bool)
        with pytest.raises(ValueError, match="refine_kernel"):
            refine_masked_candidates(corpus, rows, mask, 2, kernel="simd")


class TestKernelChoiceAtIndexLevel:
    """Flipping an index's refine_kernel knob must not change any bit."""

    @pytest.mark.parametrize(
        "build",
        [
            lambda pts: VAFileIndex(pts, bits_per_dim=3),
            lambda pts: LshIndex(pts, bucket_width=3.0, seed=0, n_probes=4),
        ],
        ids=["vafile", "lsh"],
    )
    def test_gather_and_gemm_agree(self, build, rng):
        corpus = rng.normal(size=(300, 6))
        corpus[50] = corpus[7]  # exact duplicate: tie across kernels
        a, b = build(corpus), build(corpus)
        a.refine_kernel = "gather"
        b.refine_kernel = "gemm"
        queries = np.vstack([rng.normal(size=(15, 6)), corpus[:5]])
        ra = a.query_batch(queries, k=4)
        rb = b.query_batch(queries, k=4)
        for got, expected in zip(rb, ra):
            assert np.array_equal(got.indices, expected.indices)
            assert got.distances.tolist() == expected.distances.tolist()
            assert got.stats == expected.stats

    def test_projscreen_kernels_agree(self, rng):
        from repro.search.projected import ProjectionScreenedIndex

        latent = rng.normal(size=(250, 3))
        corpus = latent @ rng.normal(size=(3, 10)) + 0.01 * rng.normal(
            size=(250, 10)
        )
        a = ProjectionScreenedIndex(corpus, refine_kernel="gather")
        b = ProjectionScreenedIndex(corpus, refine_kernel="gemm")
        queries = rng.normal(size=(12, 10))
        ra = a.query_batch(queries, k=5)
        rb = b.query_batch(queries, k=5)
        for got, expected in zip(rb, ra):
            assert np.array_equal(got.indices, expected.indices)
            assert got.distances.tolist() == expected.distances.tolist()
            assert got.stats == expected.stats
