"""Tests for the VA-file index."""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.vafile import VAFileIndex


class TestVAFileIndex:
    def test_agrees_with_bruteforce(self, rng):
        points = rng.normal(size=(300, 6))
        va = VAFileIndex(points, bits_per_dim=4)
        reference = BruteForceIndex(points)
        for _ in range(20):
            query = rng.normal(size=6)
            ours = va.query(query, k=5)
            expected = reference.query(query, k=5)
            assert np.array_equal(ours.indices, expected.indices)
            assert np.allclose(ours.distances, expected.distances)

    def test_agrees_with_coarse_quantization(self, rng):
        # Even 1 bit per dimension must stay exact (bounds get loose,
        # pruning gets weak, correctness is untouched).
        points = rng.normal(size=(150, 4))
        va = VAFileIndex(points, bits_per_dim=1)
        reference = BruteForceIndex(points)
        query = rng.normal(size=4)
        assert np.array_equal(
            va.query(query, k=3).indices, reference.query(query, k=3).indices
        )

    def test_agrees_with_ties(self, rng):
        points = rng.integers(0, 3, size=(80, 3)).astype(float)
        va = VAFileIndex(points, bits_per_dim=3)
        reference = BruteForceIndex(points)
        query = np.array([1.0, 1.0, 1.0])
        assert np.array_equal(
            va.query(query, k=5).indices, reference.query(query, k=5).indices
        )

    def test_refines_fewer_with_more_bits(self, rng):
        points = rng.uniform(size=(2000, 4))
        query = rng.uniform(size=4)
        coarse = VAFileIndex(points, bits_per_dim=2).query(query, k=3)
        fine = VAFileIndex(points, bits_per_dim=8).query(query, k=3)
        assert fine.stats.points_scanned <= coarse.stats.points_scanned

    def test_scans_few_vectors_in_low_dimensions(self, rng):
        points = rng.uniform(size=(3000, 3))
        va = VAFileIndex(points, bits_per_dim=6)
        result = va.query(rng.uniform(size=3), k=1)
        assert result.stats.points_scanned < 100

    def test_constant_dimension_handled(self, rng):
        points = rng.normal(size=(50, 3))
        points[:, 1] = 5.0
        va = VAFileIndex(points, bits_per_dim=4)
        reference = BruteForceIndex(points)
        query = rng.normal(size=3)
        assert np.array_equal(
            va.query(query, k=4).indices, reference.query(query, k=4).indices
        )

    def test_compression_ratio(self, rng):
        va = VAFileIndex(rng.normal(size=(10, 2)), bits_per_dim=8)
        assert va.compression_ratio() == pytest.approx(8 / 64)

    def test_rejects_bad_bits(self, rng):
        with pytest.raises(ValueError, match="bits_per_dim"):
            VAFileIndex(rng.normal(size=(10, 2)), bits_per_dim=0)
        with pytest.raises(ValueError, match="bits_per_dim"):
            VAFileIndex(rng.normal(size=(10, 2)), bits_per_dim=17)

    def test_query_outside_data_range(self, rng):
        points = rng.uniform(size=(100, 3))
        va = VAFileIndex(points, bits_per_dim=4)
        reference = BruteForceIndex(points)
        query = np.full(3, 10.0)  # far outside every cell
        assert np.array_equal(
            va.query(query, k=2).indices, reference.query(query, k=2).indices
        )

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(40, 3))
        va = VAFileIndex(points)
        reference = BruteForceIndex(points)
        query = rng.normal(size=3)
        assert np.array_equal(
            va.query(query, k=40).indices, reference.query(query, k=40).indices
        )


class TestBitAllocation:
    def skewed_corpus(self, n=600, scale=(10.0, 5.0, 1.0, 1.0, 0.5, 0.05)):
        rng = np.random.default_rng(9)
        return rng.normal(size=(n, len(scale))) * np.asarray(scale)

    def test_budget_is_conserved(self):
        points = self.skewed_corpus()
        index = VAFileIndex(points, bits_per_dim=4, bit_allocation="variance")
        assert int(index.bits.sum()) == 4 * points.shape[1]
        assert np.all(index.bits >= 0) and np.all(index.bits <= 16)

    def test_high_variance_dims_win_bits(self):
        points = self.skewed_corpus()
        index = VAFileIndex(points, bits_per_dim=4, bit_allocation="variance")
        variances = points.var(axis=0)
        assert index.bits[np.argmax(variances)] >= index.bits[np.argmin(variances)]
        # The spread must be real, not a tie: the allocation is the
        # whole point on a corpus this skewed.
        assert index.bits.max() > index.bits.min()

    def test_variance_allocation_stays_exact(self, rng):
        points = self.skewed_corpus()
        queries = rng.normal(size=(40, points.shape[1])) * 2.0
        index = VAFileIndex(points, bits_per_dim=3, bit_allocation="variance")
        reference = BruteForceIndex(points)
        for query in queries:
            expected = reference.query(query, k=4)
            actual = index.query(query, k=4)
            assert np.array_equal(actual.indices, expected.indices)
            assert actual.distances.tolist() == expected.distances.tolist()

    def test_variance_bits_refine_fewer_on_skewed_data(self, rng):
        # Spending bits where the variance is concentrates pruning power:
        # phase-1 survivors (the refinement funnel) must shrink.
        points = self.skewed_corpus(n=1500)
        queries = rng.normal(size=(25, points.shape[1])) * 2.0
        uniform = VAFileIndex(points, bits_per_dim=3, bit_allocation="uniform")
        weighted = VAFileIndex(points, bits_per_dim=3, bit_allocation="variance")
        funnel = {
            name: index.query_batch(queries, k=3).stats.candidates_generated
            for name, index in (("uniform", uniform), ("variance", weighted))
        }
        assert funnel["variance"] < funnel["uniform"]

    def test_zero_variance_corpus_falls_back_to_uniform(self):
        points = np.ones((50, 4))
        index = VAFileIndex(points, bits_per_dim=5, bit_allocation="variance")
        assert index.bits.tolist() == [5, 5, 5, 5]

    def test_uniform_mode_keeps_flat_vector(self, rng):
        points = rng.normal(size=(80, 3))
        index = VAFileIndex(points, bits_per_dim=6)
        assert index.bit_allocation == "uniform"
        assert index.bits.tolist() == [6, 6, 6]

    def test_rejects_bad_allocation_mode(self, rng):
        points = rng.normal(size=(20, 3))
        with pytest.raises(ValueError, match="bit_allocation"):
            VAFileIndex(points, bit_allocation="entropy")

    def test_rejects_bad_refine_kernel(self, rng):
        points = rng.normal(size=(20, 3))
        with pytest.raises(ValueError, match="refine_kernel"):
            VAFileIndex(points, refine_kernel="nope")

    def test_candidates_generated_tracks_phase_one(self, rng):
        points = rng.normal(size=(500, 4))
        index = VAFileIndex(points, bits_per_dim=4)
        result = index.query(points[3], k=3)
        stats = result.stats
        # Funnel: n >= phase-1 survivors >= rows actually refined >= k.
        assert index.n_points >= stats.candidates_generated
        assert stats.candidates_generated >= stats.points_scanned
        assert stats.nodes_pruned == index.n_points - stats.candidates_generated


class TestBitVectorSnapshots:
    def test_bits_round_trip(self, rng, tmp_path):
        points = np.random.default_rng(9).normal(size=(300, 5)) * np.array(
            [8.0, 2.0, 1.0, 0.3, 0.05]
        )
        index = VAFileIndex(points, bits_per_dim=4, bit_allocation="variance")
        path = str(tmp_path / "vafile-v2.npz")
        index.save(path)
        loaded = VAFileIndex.load(path)
        assert loaded.bits.tolist() == index.bits.tolist()
        assert loaded.bit_allocation == "variance"
        queries = rng.normal(size=(15, 5))
        a = index.query_batch(queries, k=4)
        b = loaded.query_batch(queries, k=4)
        for got, expected in zip(b, a):
            assert np.array_equal(got.indices, expected.indices)
            assert got.distances.tolist() == expected.distances.tolist()
            assert got.stats == expected.stats

    def test_legacy_v1_snapshot_loads_uniform(self, rng, tmp_path):
        from tests.search.test_lsh import rewrite_as_v1_snapshot

        points = rng.normal(size=(200, 4))
        index = VAFileIndex(points, bits_per_dim=5)
        path = str(tmp_path / "vafile-v1.npz")
        index.save(path)
        rewrite_as_v1_snapshot(path, drop=("bits",))
        loaded = VAFileIndex.load(path)
        assert loaded.bits.tolist() == [5, 5, 5, 5]
        assert loaded.bit_allocation == "uniform"
        queries = rng.normal(size=(12, 4))
        a = index.query_batch(queries, k=3)
        b = loaded.query_batch(queries, k=3)
        for got, expected in zip(b, a):
            assert np.array_equal(got.indices, expected.indices)
            assert got.distances.tolist() == expected.distances.tolist()
            assert got.stats == expected.stats
