"""Tests for the VA-file index."""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.vafile import VAFileIndex


class TestVAFileIndex:
    def test_agrees_with_bruteforce(self, rng):
        points = rng.normal(size=(300, 6))
        va = VAFileIndex(points, bits_per_dim=4)
        reference = BruteForceIndex(points)
        for _ in range(20):
            query = rng.normal(size=6)
            ours = va.query(query, k=5)
            expected = reference.query(query, k=5)
            assert np.array_equal(ours.indices, expected.indices)
            assert np.allclose(ours.distances, expected.distances)

    def test_agrees_with_coarse_quantization(self, rng):
        # Even 1 bit per dimension must stay exact (bounds get loose,
        # pruning gets weak, correctness is untouched).
        points = rng.normal(size=(150, 4))
        va = VAFileIndex(points, bits_per_dim=1)
        reference = BruteForceIndex(points)
        query = rng.normal(size=4)
        assert np.array_equal(
            va.query(query, k=3).indices, reference.query(query, k=3).indices
        )

    def test_agrees_with_ties(self, rng):
        points = rng.integers(0, 3, size=(80, 3)).astype(float)
        va = VAFileIndex(points, bits_per_dim=3)
        reference = BruteForceIndex(points)
        query = np.array([1.0, 1.0, 1.0])
        assert np.array_equal(
            va.query(query, k=5).indices, reference.query(query, k=5).indices
        )

    def test_refines_fewer_with_more_bits(self, rng):
        points = rng.uniform(size=(2000, 4))
        query = rng.uniform(size=4)
        coarse = VAFileIndex(points, bits_per_dim=2).query(query, k=3)
        fine = VAFileIndex(points, bits_per_dim=8).query(query, k=3)
        assert fine.stats.points_scanned <= coarse.stats.points_scanned

    def test_scans_few_vectors_in_low_dimensions(self, rng):
        points = rng.uniform(size=(3000, 3))
        va = VAFileIndex(points, bits_per_dim=6)
        result = va.query(rng.uniform(size=3), k=1)
        assert result.stats.points_scanned < 100

    def test_constant_dimension_handled(self, rng):
        points = rng.normal(size=(50, 3))
        points[:, 1] = 5.0
        va = VAFileIndex(points, bits_per_dim=4)
        reference = BruteForceIndex(points)
        query = rng.normal(size=3)
        assert np.array_equal(
            va.query(query, k=4).indices, reference.query(query, k=4).indices
        )

    def test_compression_ratio(self, rng):
        va = VAFileIndex(rng.normal(size=(10, 2)), bits_per_dim=8)
        assert va.compression_ratio() == pytest.approx(8 / 64)

    def test_rejects_bad_bits(self, rng):
        with pytest.raises(ValueError, match="bits_per_dim"):
            VAFileIndex(rng.normal(size=(10, 2)), bits_per_dim=0)
        with pytest.raises(ValueError, match="bits_per_dim"):
            VAFileIndex(rng.normal(size=(10, 2)), bits_per_dim=17)

    def test_query_outside_data_range(self, rng):
        points = rng.uniform(size=(100, 3))
        va = VAFileIndex(points, bits_per_dim=4)
        reference = BruteForceIndex(points)
        query = np.full(3, 10.0)  # far outside every cell
        assert np.array_equal(
            va.query(query, k=2).indices, reference.query(query, k=2).indices
        )

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(40, 3))
        va = VAFileIndex(points)
        reference = BruteForceIndex(points)
        query = rng.normal(size=3)
        assert np.array_equal(
            va.query(query, k=40).indices, reference.query(query, k=40).indices
        )
