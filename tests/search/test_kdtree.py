"""Tests for the kd-tree index."""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.kdtree import KdTreeIndex


class TestKdTreeIndex:
    def test_agrees_with_bruteforce(self, rng):
        points = rng.normal(size=(300, 4))
        tree = KdTreeIndex(points, leaf_size=8)
        reference = BruteForceIndex(points)
        for _ in range(20):
            query = rng.normal(size=4)
            ours = tree.query(query, k=5)
            expected = reference.query(query, k=5)
            assert np.array_equal(ours.indices, expected.indices)
            assert np.allclose(ours.distances, expected.distances)

    def test_agrees_on_integer_grid_with_ties(self, rng):
        # Exact distance ties stress the tie-break parity.
        points = rng.integers(0, 4, size=(120, 3)).astype(float)
        tree = KdTreeIndex(points, leaf_size=4)
        reference = BruteForceIndex(points)
        for _ in range(15):
            query = rng.integers(0, 4, size=3).astype(float)
            assert np.array_equal(
                tree.query(query, k=4).indices,
                reference.query(query, k=4).indices,
            )

    def test_duplicate_points(self):
        points = np.zeros((10, 2))
        tree = KdTreeIndex(points, leaf_size=2)
        result = tree.query(np.zeros(2), k=3)
        assert list(result.indices) == [0, 1, 2]

    def test_single_point(self):
        tree = KdTreeIndex([[1.0, 2.0]])
        result = tree.query([0.0, 0.0], k=1)
        assert result.neighbors[0].index == 0

    def test_prunes_in_low_dimensions(self, rng):
        points = rng.uniform(size=(2000, 2))
        tree = KdTreeIndex(points, leaf_size=16)
        result = tree.query(np.array([0.5, 0.5]), k=1)
        # In 2-d the bound is sharp: the vast majority must be pruned.
        assert result.stats.points_scanned < 400

    def test_pruning_collapses_in_high_dimensions(self, rng):
        # The Section 1.1 phenomenon: same corpus size, dimensionality
        # 50 — the optimistic bound stops working.
        points = rng.uniform(size=(2000, 50))
        tree = KdTreeIndex(points, leaf_size=16)
        result = tree.query(rng.uniform(size=50), k=1)
        assert result.stats.points_scanned > 1000

    def test_stats_counts_consistent(self, rng):
        points = rng.normal(size=(100, 3))
        result = KdTreeIndex(points, leaf_size=10).query(rng.normal(size=3), k=2)
        assert 2 <= result.stats.points_scanned <= 100
        assert result.stats.nodes_visited >= 1

    def test_rejects_bad_leaf_size(self, rng):
        with pytest.raises(ValueError, match="leaf_size"):
            KdTreeIndex(rng.normal(size=(10, 2)), leaf_size=0)

    def test_rejects_bad_k(self, rng):
        tree = KdTreeIndex(rng.normal(size=(5, 2)))
        with pytest.raises(ValueError, match="k must"):
            tree.query(np.zeros(2), k=6)

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(30, 3))
        tree = KdTreeIndex(points, leaf_size=4)
        reference = BruteForceIndex(points)
        query = rng.normal(size=3)
        assert np.array_equal(
            tree.query(query, k=30).indices, reference.query(query, k=30).indices
        )
