"""Tests for the brute-force k-NN baseline."""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex


class TestBruteForceIndex:
    def test_nearest_neighbor_on_line(self):
        index = BruteForceIndex([[0.0], [10.0], [4.0]])
        result = index.query([3.0], k=1)
        assert result.neighbors[0].index == 2
        assert result.neighbors[0].distance == pytest.approx(1.0)

    def test_k_results_sorted(self, random_points):
        index = BruteForceIndex(random_points)
        result = index.query(random_points[0], k=10)
        assert len(result.neighbors) == 10
        assert np.all(np.diff(result.distances) >= 0.0)

    def test_self_query_returns_self_first(self, random_points):
        index = BruteForceIndex(random_points)
        result = index.query(random_points[42], k=1)
        assert result.neighbors[0].index == 42
        assert result.neighbors[0].distance == 0.0

    def test_tie_break_by_lower_index(self):
        index = BruteForceIndex([[1.0], [1.0], [1.0]])
        result = index.query([0.0], k=2)
        assert list(result.indices) == [0, 1]

    def test_scans_everything(self, random_points):
        index = BruteForceIndex(random_points)
        result = index.query(random_points[0], k=3)
        assert result.stats.points_scanned == len(random_points)
        assert result.stats.pruning_fraction(len(random_points)) == 0.0

    def test_k_equals_n(self):
        index = BruteForceIndex([[0.0], [1.0], [2.0]])
        result = index.query([0.0], k=3)
        assert list(result.indices) == [0, 1, 2]

    def test_rejects_k_zero(self, random_points):
        with pytest.raises(ValueError, match="k must"):
            BruteForceIndex(random_points).query(random_points[0], k=0)

    def test_rejects_k_beyond_n(self):
        with pytest.raises(ValueError, match="k must"):
            BruteForceIndex([[0.0]]).query([0.0], k=2)

    def test_rejects_wrong_query_width(self, random_points):
        with pytest.raises(ValueError, match="query"):
            BruteForceIndex(random_points).query(np.zeros(3), k=1)

    def test_rejects_nan_query(self, random_points):
        with pytest.raises(ValueError, match="finite"):
            BruteForceIndex(random_points).query(
                np.full(random_points.shape[1], np.nan), k=1
            )

    def test_rejects_empty_corpus(self):
        with pytest.raises(ValueError, match="at least one"):
            BruteForceIndex(np.empty((0, 3)))

    def test_properties(self, random_points):
        index = BruteForceIndex(random_points)
        assert index.n_points == random_points.shape[0]
        assert index.dimensionality == random_points.shape[1]
