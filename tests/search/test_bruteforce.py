"""Tests for the brute-force k-NN baseline."""

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex


class TestBruteForceIndex:
    def test_nearest_neighbor_on_line(self):
        index = BruteForceIndex([[0.0], [10.0], [4.0]])
        result = index.query([3.0], k=1)
        assert result.neighbors[0].index == 2
        assert result.neighbors[0].distance == pytest.approx(1.0)

    def test_k_results_sorted(self, random_points):
        index = BruteForceIndex(random_points)
        result = index.query(random_points[0], k=10)
        assert len(result.neighbors) == 10
        assert np.all(np.diff(result.distances) >= 0.0)

    def test_self_query_returns_self_first(self, random_points):
        index = BruteForceIndex(random_points)
        result = index.query(random_points[42], k=1)
        assert result.neighbors[0].index == 42
        assert result.neighbors[0].distance == 0.0

    def test_tie_break_by_lower_index(self):
        index = BruteForceIndex([[1.0], [1.0], [1.0]])
        result = index.query([0.0], k=2)
        assert list(result.indices) == [0, 1]

    def test_scans_everything(self, random_points):
        index = BruteForceIndex(random_points)
        result = index.query(random_points[0], k=3)
        assert result.stats.points_scanned == len(random_points)
        assert result.stats.pruning_fraction(len(random_points)) == 0.0

    def test_k_equals_n(self):
        index = BruteForceIndex([[0.0], [1.0], [2.0]])
        result = index.query([0.0], k=3)
        assert list(result.indices) == [0, 1, 2]

    def test_rejects_k_zero(self, random_points):
        with pytest.raises(ValueError, match="k must"):
            BruteForceIndex(random_points).query(random_points[0], k=0)

    def test_rejects_k_beyond_n(self):
        with pytest.raises(ValueError, match="k must"):
            BruteForceIndex([[0.0]]).query([0.0], k=2)

    def test_rejects_wrong_query_width(self, random_points):
        with pytest.raises(ValueError, match="query"):
            BruteForceIndex(random_points).query(np.zeros(3), k=1)

    def test_rejects_nan_query(self, random_points):
        with pytest.raises(ValueError, match="finite"):
            BruteForceIndex(random_points).query(
                np.full(random_points.shape[1], np.nan), k=1
            )

    def test_rejects_empty_corpus(self):
        with pytest.raises(ValueError, match="at least one"):
            BruteForceIndex(np.empty((0, 3)))

    def test_properties(self, random_points):
        index = BruteForceIndex(random_points)
        assert index.n_points == random_points.shape[0]
        assert index.dimensionality == random_points.shape[1]


class TestScanDtypeKnob:
    """The dtype knob trades scan bytes only — never answer bits."""

    def test_all_dtypes_bit_identical(self, rng):
        corpus = rng.normal(size=(120, 7))
        corpus[40] = corpus[3]  # exact tie across the f32 boundary
        queries = np.concatenate([corpus[:5], rng.normal(size=(9, 7))])
        reference = BruteForceIndex(corpus, dtype="float64")
        expected = reference.query_batch(queries, k=6)
        for dtype in ("auto", "float32"):
            got = BruteForceIndex(corpus, dtype=dtype).query_batch(
                queries, k=6
            )
            assert np.array_equal(got.indices, expected.indices), dtype
            assert (
                got.distances.tobytes() == expected.distances.tobytes()
            ), dtype

    def test_float32_overflow_guard_falls_back(self, rng):
        # Magnitudes whose squares pass float32 infinity must never be
        # scored in float32, whatever the caller requested.
        corpus = rng.normal(size=(30, 3)) * 1e20
        index = BruteForceIndex(corpus, dtype="float32")
        q_sq = np.einsum("qd,qd->q", corpus[:2], corpus[:2])
        assert not index._scanner.uses_float32(q_sq)
        expected = BruteForceIndex(corpus, dtype="float64").query_batch(
            corpus[:4], k=3
        )
        got = index.query_batch(corpus[:4], k=3)
        assert np.array_equal(got.indices, expected.indices)
        assert got.distances.tobytes() == expected.distances.tobytes()

    def test_rejects_unknown_dtype(self, rng):
        with pytest.raises(ValueError, match="dtype must be one of"):
            BruteForceIndex(rng.normal(size=(5, 2)), dtype="float16")

    def test_dtype_survives_snapshot(self, rng, tmp_path):
        corpus = rng.normal(size=(40, 4))
        path = str(tmp_path / "bf32.npz")
        BruteForceIndex(corpus, dtype="float32").save(path)
        loaded = BruteForceIndex.load(path)
        assert loaded.dtype == "float32"

    def test_missing_scan_dtype_defaults_to_auto(self, rng, tmp_path):
        # Snapshots written before the knob existed carry no scan_dtype.
        from repro.search.snapshot import write_snapshot

        corpus = rng.normal(size=(25, 3))
        sq = np.einsum("nd,nd->n", corpus, corpus)
        path = str(tmp_path / "old.npz")
        write_snapshot(
            path, "bruteforce", {"points": corpus, "sq_norms": sq}
        )
        loaded = BruteForceIndex.load(path)
        assert loaded.dtype == "auto"
        expected = BruteForceIndex(corpus).query_batch(corpus[:3], k=2)
        got = loaded.query_batch(corpus[:3], k=2)
        assert np.array_equal(got.indices, expected.indices)
        assert got.distances.tobytes() == expected.distances.tobytes()
