"""Tests for the dynamically insertable R-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.search.bruteforce import BruteForceIndex
from repro.search.dynamic_rtree import DynamicRTree


class TestDynamicRTree:
    def test_agrees_with_bruteforce_after_stream(self, rng):
        points = rng.normal(size=(250, 4))
        tree = DynamicRTree(4, page_size=8)
        tree.extend(points)
        reference = BruteForceIndex(points)
        for _ in range(15):
            query = rng.normal(size=4)
            assert np.array_equal(
                tree.query(query, k=5).indices,
                reference.query(query, k=5).indices,
            )

    def test_query_correct_at_every_prefix(self, rng):
        points = rng.normal(size=(80, 3))
        tree = DynamicRTree(3, page_size=4)
        query = rng.normal(size=3)
        for i, row in enumerate(points):
            tree.insert(row)
            k = min(3, i + 1)
            expected = BruteForceIndex(points[: i + 1]).query(query, k=k)
            actual = tree.query(query, k=k)
            assert np.array_equal(actual.indices, expected.indices)

    def test_insert_returns_sequential_indices(self, rng):
        tree = DynamicRTree(2)
        indices = tree.extend(rng.normal(size=(10, 2)))
        assert indices == list(range(10))
        assert tree.insert(rng.normal(size=2)) == 10

    def test_points_accumulate_in_order(self, rng):
        tree = DynamicRTree(3)
        rows = rng.normal(size=(20, 3))
        tree.extend(rows)
        assert np.array_equal(tree.points, rows)

    def test_tree_grows_in_height(self, rng):
        tree = DynamicRTree(2, page_size=4)
        assert tree.height == 1
        tree.extend(rng.normal(size=(300, 2)))
        assert tree.height >= 3

    def test_duplicates_and_tie_break(self):
        tree = DynamicRTree(2, page_size=4)
        tree.extend(np.ones((20, 2)))
        result = tree.query(np.zeros(2), k=5)
        assert list(result.indices) == [0, 1, 2, 3, 4]

    def test_prunes_on_clustered_data(self, rng):
        centers = rng.normal(size=(6, 3)) * 50
        labels = rng.integers(0, 6, size=1500)
        points = centers[labels] + rng.normal(size=(1500, 3))
        tree = DynamicRTree(3, page_size=16)
        tree.extend(points)
        result = tree.query(points[7], k=3)
        assert result.stats.points_scanned < 750

    def test_empty_index_rejects_query(self):
        tree = DynamicRTree(2)
        with pytest.raises(ValueError, match="empty"):
            tree.query(np.zeros(2), k=1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="dimensionality"):
            DynamicRTree(0)
        with pytest.raises(ValueError, match="page_size"):
            DynamicRTree(3, page_size=3)

    def test_rejects_wrong_width_insert(self):
        tree = DynamicRTree(3)
        with pytest.raises(ValueError, match="query"):
            tree.insert(np.zeros(2))

    def test_mbrs_contain_all_points(self, rng):
        tree = DynamicRTree(3, page_size=4)
        points = rng.normal(size=(120, 3))
        tree.extend(points)

        def check(node):
            if node.is_leaf:
                for index in node.entries:
                    row = points[index]
                    assert np.all(row >= node.lower - 1e-12)
                    assert np.all(row <= node.upper + 1e-12)
            else:
                for child in node.entries:
                    assert np.all(child.lower >= node.lower - 1e-12)
                    assert np.all(child.upper <= node.upper + 1e-12)
                    check(child)

        check(tree._root)

    def test_pairs_with_dynamic_reducer(self):
        # The dynamic-database story end-to-end: stream raw points into
        # the reducer, stream their reductions into the insertable index,
        # query at any time.
        from repro.datasets.synthetic import latent_concept_dataset
        from repro.dynamic.reducer import DynamicReducer

        data = latent_concept_dataset(200, 16, 3, noise_std=0.8, seed=0)
        reducer = DynamicReducer(n_dims=16, n_components=3, reservoir_size=200)
        reducer.insert(data.features[:100])
        tree = DynamicRTree(3, page_size=8)
        tree.extend(reducer.transform(data.features[:100]))
        for start in range(100, 200, 20):
            batch = data.features[start : start + 20]
            reducer.insert(batch)
            tree.extend(reducer.transform(batch))
        query = reducer.transform(data.features[42])
        result = tree.query(query, k=1)
        assert result.neighbors[0].index == 42


@st.composite
def insert_streams(draw):
    n = draw(st.integers(2, 40))
    d = draw(st.integers(1, 4))
    elements = st.floats(
        min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
    ).map(lambda v: 0.0 if abs(v) < 1e-6 else v)
    corpus = draw(arrays(np.float64, (n, d), elements=elements))
    query = draw(arrays(np.float64, (d,), elements=elements))
    k = draw(st.integers(1, n))
    return corpus, query, k


class TestDynamicRTreeProperties:
    @given(insert_streams())
    @settings(max_examples=80, deadline=None)
    def test_knn_exactness(self, case):
        corpus, query, k = case
        tree = DynamicRTree(corpus.shape[1], page_size=4)
        tree.extend(corpus)
        expected = BruteForceIndex(corpus).query(query, k)
        actual = tree.query(query, k)
        assert np.array_equal(actual.indices, expected.indices)


class TestDeletion:
    def test_delete_then_query_matches_bruteforce(self, rng):
        points = rng.normal(size=(120, 3))
        tree = DynamicRTree(3, page_size=5)
        tree.extend(points)
        victims = rng.choice(120, size=60, replace=False)
        for index in victims:
            tree.delete(int(index))
        keep = sorted(set(range(120)) - set(int(v) for v in victims))
        reference = BruteForceIndex(points[keep])
        query = rng.normal(size=3)
        expected = [keep[i] for i in reference.query(query, k=4).indices]
        assert tree.query(query, k=4).indices.tolist() == expected

    def test_live_count_tracks_deletions(self, rng):
        tree = DynamicRTree(2, page_size=4)
        tree.extend(rng.normal(size=(20, 2)))
        tree.delete(3)
        tree.delete(17)
        assert tree.n_live == 18
        assert tree.n_points == 20  # indices are never reused

    def test_delete_everything_then_reinsert(self, rng):
        tree = DynamicRTree(2, page_size=4)
        rows = rng.normal(size=(30, 2))
        tree.extend(rows)
        for i in range(30):
            tree.delete(i)
        assert tree.n_live == 0
        with pytest.raises(ValueError, match="empty"):
            tree.query(np.zeros(2), k=1)
        new_index = tree.insert(np.array([1.0, 2.0]))
        assert new_index == 30
        assert tree.query(np.zeros(2), k=1).neighbors[0].index == 30

    def test_double_delete_raises(self, rng):
        tree = DynamicRTree(2)
        tree.extend(rng.normal(size=(10, 2)))
        tree.delete(4)
        with pytest.raises(KeyError):
            tree.delete(4)

    def test_unknown_index_raises(self, rng):
        tree = DynamicRTree(2)
        tree.extend(rng.normal(size=(5, 2)))
        with pytest.raises(KeyError):
            tree.delete(99)

    def test_interleaved_insert_delete_query(self, rng):
        tree = DynamicRTree(3, page_size=4)
        alive: dict[int, np.ndarray] = {}
        for step in range(200):
            if alive and rng.uniform() < 0.4:
                victim = int(rng.choice(list(alive)))
                tree.delete(victim)
                del alive[victim]
            else:
                row = rng.normal(size=3)
                alive[tree.insert(row)] = row
            if alive and step % 23 == 0:
                query = rng.normal(size=3)
                keys = sorted(alive)
                corpus = np.vstack([alive[key] for key in keys])
                local = BruteForceIndex(corpus).query(query, k=1).neighbors[0]
                expected = keys[local.index]
                assert tree.query(query, k=1).neighbors[0].index == expected

    def test_mbrs_stay_tight_after_deletions(self, rng):
        # Deleting boundary points must shrink ancestors' boxes enough
        # that no live point ever falls outside its leaf chain.
        tree = DynamicRTree(2, page_size=4)
        points = rng.normal(size=(60, 2)) * 10
        tree.extend(points)
        for index in range(0, 60, 2):
            tree.delete(index)

        def check(node):
            if node.is_leaf:
                for index in node.entries:
                    row = points[index]
                    assert np.all(row >= node.lower - 1e-12)
                    assert np.all(row <= node.upper + 1e-12)
            else:
                for child in node.entries:
                    assert np.all(child.lower >= node.lower - 1e-12)
                    assert np.all(child.upper <= node.upper + 1e-12)
                    check(child)

        check(tree._root)
