"""The index-kind registry: one mapping, validated specs, exact builds.

:mod:`repro.search.registry` replaced three drifting kind→class tables
(``cli.py``, ``snapshot.py``, ``shard/partition.py``) plus the pipeline
factory dict.  These tests pin the contract that makes that safe:

* **round-trip every kind** — ``build_index`` over the registry equals
  direct construction bit-for-bit, and the built index snapshots and
  reloads through the registry-backed dispatch;
* **loud rejection** — unknown kinds and wrong-kind keywords fail with
  messages naming the accepted set, never a deep ``TypeError``;
* **the protocol** — every registered class satisfies the runtime
  :class:`repro.search.Index` protocol and declares a matching ``kind``
  class attribute (with the deprecated ``_SNAPSHOT_KIND`` aliases kept
  equal for one release);
* **one mapping remains** — a source lint asserting no module outside
  the registry declares a dict literal keyed by kind names.
"""

import os
import re

import numpy as np
import pytest

from repro.search import (
    EXACT_KINDS,
    INDEX_KINDS,
    Index,
    KindSpec,
    build_index,
    index_class,
    index_spec,
    iter_specs,
    load_index,
    save_index,
    shared_build_kwargs,
)

# Non-default build kwargs per kind, exercising every declared CLI
# parameter at least once.
_BUILD_KWARGS = {
    "bruteforce": {},
    "kdtree": {"leaf_size": 4},
    "rtree": {"page_size": 4},
    "vafile": {"bits_per_dim": 3, "bit_allocation": "variance"},
    "pyramid": {},
    "idistance": {"seed": 0},
    "igrid": {"ranges_per_dim": 3},
    "lsh": {"n_tables": 4, "n_hashes": 3, "bucket_width": 2.0, "seed": 0},
    "projscreen": {"subspace_dim": 2, "ordering": "coherence"},
}


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(7)
    return rng.standard_normal((60, 6))


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(8)
    return rng.standard_normal((5, 6))


def _assert_same_answers(left, right, queries, k=3):
    for query in queries:
        a, b = left.query(query, k), right.query(query, k)
        assert [(n.index, n.distance) for n in a.neighbors] == [
            (n.index, n.distance) for n in b.neighbors
        ]


class TestRegistryContents:
    def test_every_kind_has_a_spec(self):
        assert set(INDEX_KINDS) == set(_BUILD_KWARGS)
        for kind in INDEX_KINDS:
            spec = index_spec(kind)
            assert isinstance(spec, KindSpec)
            assert spec.kind == kind

    def test_iter_specs_covers_all_kinds(self):
        assert tuple(spec.kind for spec in iter_specs()) == INDEX_KINDS

    def test_exact_kinds_subset(self):
        assert set(EXACT_KINDS) < set(INDEX_KINDS)
        # The two kinds a delta-merge server cannot serve exactly.
        assert set(INDEX_KINDS) - set(EXACT_KINDS) == {"lsh", "igrid"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown index kind"):
            index_spec("btree")
        with pytest.raises(ValueError, match="unknown index kind"):
            index_class("btree")

    def test_class_kind_attribute_matches_registration(self):
        for kind in INDEX_KINDS:
            cls = index_class(kind)
            assert cls.kind == kind

    def test_deprecated_snapshot_kind_aliases_still_equal(self):
        for kind in INDEX_KINDS:
            cls = index_class(kind)
            module = __import__(
                cls.__module__, fromlist=["_SNAPSHOT_KIND"]
            )
            assert module._SNAPSHOT_KIND == kind


class TestBuildRoundTrip:
    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_build_equals_direct_construction(self, kind, corpus, queries):
        built = build_index(kind, corpus, **_BUILD_KWARGS[kind])
        direct = index_class(kind)(corpus, **_BUILD_KWARGS[kind])
        _assert_same_answers(built, direct, queries)

    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_snapshot_round_trip(self, kind, corpus, queries, tmp_path):
        built = build_index(kind, corpus, **_BUILD_KWARGS[kind])
        path = os.path.join(tmp_path, f"{kind}.npz")
        save_index(built, path)
        loaded = load_index(path)
        assert type(loaded) is index_class(kind)
        _assert_same_answers(built, loaded, queries)

    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_satisfies_index_protocol(self, kind, corpus):
        built = build_index(kind, corpus, **_BUILD_KWARGS[kind])
        assert isinstance(built, Index)
        assert built.kind == kind
        assert built.n_points == corpus.shape[0]
        assert built.dimensionality == corpus.shape[1]

    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_wrong_keyword_rejected_with_accepted_set(self, kind, corpus):
        with pytest.raises(ValueError, match="accepted") as excinfo:
            build_index(kind, corpus, definitely_not_a_kwarg=1)
        assert "definitely_not_a_kwarg" in str(excinfo.value)

    def test_cross_kind_keyword_rejected(self, corpus):
        # A keyword valid for one kind is loudly invalid for another.
        with pytest.raises(ValueError, match="subspace_dim"):
            build_index("kdtree", corpus, subspace_dim=2)
        with pytest.raises(ValueError, match="n_probes"):
            build_index("pyramid", corpus, n_probes=3)


class TestSharedArtifacts:
    def test_igrid_discretization_filled_once(self, corpus):
        kwargs = shared_build_kwargs("igrid", corpus, {"ranges_per_dim": 3})
        assert "discretization" in kwargs
        # Sub-builds over disjoint halves score by the full-corpus
        # discretization, exactly like one index over the whole corpus.
        left = build_index("igrid", corpus[:30], **kwargs)
        right = build_index("igrid", corpus[30:], **kwargs)
        whole = build_index("igrid", corpus, ranges_per_dim=3)
        assert left.dimensionality == right.dimensionality
        assert whole.n_points == left.n_points + right.n_points

    def test_projscreen_projection_filled_and_params_popped(self, corpus):
        kwargs = shared_build_kwargs(
            "projscreen",
            corpus,
            {"subspace_dim": 2, "ordering": "coherence"},
        )
        assert "projection" in kwargs
        assert "subspace_dim" not in kwargs and "ordering" not in kwargs
        index = build_index("projscreen", corpus, **kwargs)
        assert index.subspace_dim == 2

    def test_existing_artifact_respected(self, corpus):
        first = shared_build_kwargs("projscreen", corpus, {})
        again = shared_build_kwargs("projscreen", corpus, dict(first))
        assert again["projection"] is first["projection"]

    def test_plain_kinds_pass_through(self, corpus):
        assert shared_build_kwargs("kdtree", corpus, {"leaf_size": 4}) == {
            "leaf_size": 4
        }


def test_exactly_one_kind_to_class_mapping_in_source():
    """Source lint: no dict literal keyed by kind names outside registry.

    The refactor's acceptance criterion — if someone reintroduces a
    ``{"kdtree": KdTreeIndex, ...}`` table in another module, this test
    names the file.  Dict-literal keys sit at the start of their line;
    equality comparisons (``if kind == "kdtree":``) do not match.
    """
    pattern = re.compile(
        r'^\s*"(%s)"\s*:' % "|".join(INDEX_KINDS), re.MULTILINE
    )
    src_root = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "src"
    )
    offenders = []
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            if os.path.basename(path) == "registry.py":
                continue
            with open(path) as handle:
                if pattern.search(handle.read()):
                    offenders.append(os.path.relpath(path, src_root))
    assert not offenders, (
        "kind→class mappings outside repro.search.registry: "
        f"{sorted(offenders)}"
    )
