"""Snapshot persistence: save → load → bit-identical answers, all indexes.

The snapshot contract has two halves.  Loading must be *exact*: a loaded
index answers ``query``/``query_batch`` with the same neighbors, the
same bit-identical distances, and the same :class:`QueryStats` as the
instance that wrote the file — over adversarial corpora (duplicate
points, a single-point corpus, d=1) where any structural drift would
surface as a changed tie-break or prune count.  Rejection must be
*loud*: anything that is not a healthy snapshot of the expected kind —
missing, truncated, garbage, foreign ``.npz``, wrong index kind, future
version — raises :class:`SnapshotError` instead of producing a
half-initialized index.
"""

import numpy as np
import pytest

from repro.search import (
    BruteForceIndex,
    IDistanceIndex,
    IGridIndex,
    KdTreeIndex,
    LshIndex,
    ProjectionScreenedIndex,
    PyramidIndex,
    RTreeIndex,
    SnapshotError,
    VAFileIndex,
    load_index,
    save_index,
    snapshot_kind,
)

# (kind, class, builder) for all nine snapshot-capable indexes; builders
# use non-default parameters where that exercises more structure.
INDEX_SPECS = [
    ("bruteforce", BruteForceIndex, lambda pts: BruteForceIndex(pts)),
    ("kdtree", KdTreeIndex, lambda pts: KdTreeIndex(pts, leaf_size=4)),
    ("rtree", RTreeIndex, lambda pts: RTreeIndex(pts, page_size=4)),
    ("vafile", VAFileIndex, lambda pts: VAFileIndex(pts, bits_per_dim=3)),
    ("pyramid", PyramidIndex, lambda pts: PyramidIndex(pts)),
    ("idistance", IDistanceIndex, lambda pts: IDistanceIndex(pts, seed=0)),
    ("igrid", IGridIndex, lambda pts: IGridIndex(pts, ranges_per_dim=3)),
    (
        "lsh",
        LshIndex,
        lambda pts: LshIndex(
            pts, n_tables=4, n_hashes=3, bucket_width=2.0, seed=0
        ),
    ),
    (
        "projscreen",
        ProjectionScreenedIndex,
        lambda pts: ProjectionScreenedIndex(
            pts,
            subspace_dim=min(2, pts.shape[1]),
            ordering="coherence",
        ),
    ),
]

IDS = [spec[0] for spec in INDEX_SPECS]


def corpora(rng):
    """Adversarial corpora: ties, degenerate extent, minimal n and d."""
    base = rng.normal(size=(30, 4))
    return {
        "random": rng.normal(size=(60, 5)),
        "duplicates": np.concatenate([base, base[:15]]),
        "single_point": rng.normal(size=(1, 3)),
        "d1": rng.normal(size=(40, 1)),
    }


def assert_same_answers(built, loaded, queries, k):
    fresh = built.query_batch(queries, k=k)
    reloaded = loaded.query_batch(queries, k=k)
    assert len(fresh) == len(reloaded)
    for a, b in zip(fresh, reloaded):
        assert tuple(a.indices.tolist()) == tuple(b.indices.tolist())
        # Bit-identical, not approximately equal: the snapshot stores the
        # exact structure arrays, so nothing may drift.
        assert tuple(a.distances.tolist()) == tuple(b.distances.tolist())
        assert a.stats == b.stats
    assert fresh.stats == reloaded.stats


@pytest.mark.parametrize("kind,cls,build", INDEX_SPECS, ids=IDS)
class TestRoundTrip:
    def test_bit_identity_across_corpora(self, kind, cls, build, rng, tmp_path):
        for name, corpus in corpora(rng).items():
            index = build(corpus)
            path = str(tmp_path / f"{kind}-{name}.npz")
            index.save(path)
            loaded = cls.load(path)
            k = min(5, corpus.shape[0])
            queries = np.concatenate(
                [corpus[:3], rng.normal(size=(4, corpus.shape[1]))]
            )
            assert_same_answers(index, loaded, queries, k)

    def test_load_index_dispatches_to_class(self, kind, cls, build, rng, tmp_path):
        corpus = rng.normal(size=(25, 3))
        index = build(corpus)
        path = str(tmp_path / "dispatch.npz")
        save_index(index, path)
        assert snapshot_kind(path) == kind
        loaded = load_index(path)
        assert type(loaded) is cls
        assert_same_answers(index, loaded, corpus[:5], k=3)

    def test_mmap_points_round_trip(self, kind, cls, build, rng, tmp_path):
        corpus = rng.normal(size=(40, 4))
        index = build(corpus)
        path = str(tmp_path / "mapped.npz")
        index.save(path)
        loaded = cls.load(path, mmap_points=True)
        assert isinstance(loaded._points, np.memmap)
        assert not loaded._points.flags.writeable
        assert_same_answers(index, loaded, corpus[:6], k=4)

    def test_wrong_kind_is_rejected(self, kind, cls, build, rng, tmp_path):
        corpus = rng.normal(size=(20, 3))
        path = str(tmp_path / "other.npz")
        if kind == "kdtree":
            RTreeIndex(corpus).save(path)
        else:
            KdTreeIndex(corpus).save(path)
        with pytest.raises(SnapshotError, match="expected"):
            cls.load(path)


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="not a readable"):
            load_index(str(tmp_path / "nowhere.npz"))

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_text("this is not a zip archive")
        with pytest.raises(SnapshotError):
            load_index(str(path))

    def test_truncated_file(self, rng, tmp_path):
        path = tmp_path / "cut.npz"
        KdTreeIndex(rng.normal(size=(50, 4))).save(str(path))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(SnapshotError):
            KdTreeIndex.load(str(path))

    def test_foreign_npz_without_magic(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.arange(10))
        with pytest.raises(SnapshotError, match="magic"):
            load_index(str(path))

    def test_future_version(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            __magic__=np.frombuffer(b"repro-index-snapshot", dtype=np.uint8),
            __version__=np.int64(999),
            __kind__=np.bytes_(b"kdtree"),
        )
        with pytest.raises(SnapshotError, match="version"):
            KdTreeIndex.load(str(path))

    def test_missing_required_array(self, rng, tmp_path):
        path = tmp_path / "hollow.npz"
        np.savez(
            path,
            __magic__=np.frombuffer(b"repro-index-snapshot", dtype=np.uint8),
            __version__=np.int64(1),
            __kind__=np.bytes_(b"bruteforce"),
            points=rng.normal(size=(5, 2)),
        )
        with pytest.raises(SnapshotError, match="missing required"):
            BruteForceIndex.load(str(path))

    def test_unknown_kind_in_dispatch(self, tmp_path):
        path = tmp_path / "alien.npz"
        np.savez(
            path,
            __magic__=np.frombuffer(b"repro-index-snapshot", dtype=np.uint8),
            __version__=np.int64(1),
            __kind__=np.bytes_(b"xtree"),
        )
        with pytest.raises(SnapshotError, match="unknown index kind"):
            load_index(str(path))

    def test_save_index_requires_snapshot_support(self):
        with pytest.raises(TypeError, match="snapshot"):
            save_index(object(), "anywhere.npz")


class TestStructurePreservation:
    """Loaded structure matches beyond the query path."""

    def test_rtree_height_and_ranges_survive(self, rng, tmp_path):
        corpus = rng.normal(size=(200, 3))
        index = RTreeIndex(corpus, page_size=4)
        path = str(tmp_path / "rt.npz")
        index.save(path)
        loaded = RTreeIndex.load(path)
        assert loaded.height == index.height
        got = loaded.range_query(corpus[0], radius=0.8)
        expected = index.range_query(corpus[0], radius=0.8)
        assert tuple(got.indices.tolist()) == tuple(expected.indices.tolist())
        assert got.stats == expected.stats

    def test_kdtree_range_query_survives(self, rng, tmp_path):
        corpus = rng.normal(size=(150, 4))
        index = KdTreeIndex(corpus, leaf_size=4)
        path = str(tmp_path / "kd.npz")
        index.save(path)
        loaded = KdTreeIndex.load(path)
        got = loaded.range_query(corpus[1], radius=1.1)
        expected = index.range_query(corpus[1], radius=1.1)
        assert tuple(got.indices.tolist()) == tuple(expected.indices.tolist())
        assert got.stats == expected.stats

    def test_lsh_candidates_survive(self, rng, tmp_path):
        corpus = rng.normal(size=(120, 6))
        index = LshIndex(corpus, n_tables=6, n_hashes=3, bucket_width=2.0)
        path = str(tmp_path / "lsh.npz")
        index.save(path)
        loaded = LshIndex.load(path)
        for row in corpus[:10]:
            assert np.array_equal(index.candidates(row), loaded.candidates(row))

    def test_projscreen_projection_survives(self, rng, tmp_path):
        corpus = rng.normal(size=(90, 8))
        index = ProjectionScreenedIndex(
            corpus, subspace_dim=3, ordering="coherence"
        )
        path = str(tmp_path / "ps.npz")
        index.save(path)
        loaded = ProjectionScreenedIndex.load(path)
        # The fitted basis is stored, not refitted: same bytes, same
        # bounds, same screen decisions after load.
        assert np.array_equal(loaded.projection.matrix, index.projection.matrix)
        assert np.array_equal(loaded.projection.center, index.projection.center)
        assert loaded.ordering == "coherence"
        assert loaded.subspace_dim == 3
        assert np.array_equal(loaded._reduced, index._reduced)
        assert loaded._reduced.dtype == np.float32

    def test_igrid_similarity_survives(self, rng, tmp_path):
        corpus = rng.normal(size=(80, 5))
        index = IGridIndex(corpus, ranges_per_dim=3)
        path = str(tmp_path / "ig.npz")
        index.save(path)
        loaded = IGridIndex.load(path)
        for a, b in zip(corpus[:5], corpus[5:10]):
            assert index.similarity(a, b) == loaded.similarity(a, b)
