"""Tests for the R-tree's incremental nearest-neighbor iterator."""

import itertools

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.rtree import RTreeIndex


class TestIterNearest:
    def test_full_enumeration_matches_bruteforce(self, rng):
        points = rng.normal(size=(60, 3))
        tree = RTreeIndex(points, page_size=8)
        query = rng.normal(size=3)
        incremental = [n.index for n in tree.iter_nearest(query)]
        expected = BruteForceIndex(points).query(query, k=60).indices.tolist()
        assert incremental == expected

    def test_prefix_matches_knn(self, rng):
        points = rng.normal(size=(100, 4))
        tree = RTreeIndex(points, page_size=16)
        query = rng.normal(size=4)
        prefix = [n.index for n in itertools.islice(tree.iter_nearest(query), 7)]
        assert prefix == tree.query(query, k=7).indices.tolist()

    def test_distances_nondecreasing(self, rng):
        points = rng.normal(size=(50, 2))
        tree = RTreeIndex(points, page_size=4)
        distances = [n.distance for n in tree.iter_nearest(rng.normal(size=2))]
        assert all(a <= b + 1e-12 for a, b in zip(distances, distances[1:]))

    def test_ties_emit_in_index_order(self):
        points = np.ones((5, 2))
        tree = RTreeIndex(points, page_size=2)
        indices = [n.index for n in tree.iter_nearest(np.zeros(2))]
        assert indices == [0, 1, 2, 3, 4]

    def test_lazy_consumption(self, rng):
        # Taking one neighbor from a large corpus must not enumerate it.
        points = rng.normal(size=(5000, 3))
        tree = RTreeIndex(points, page_size=32)
        iterator = tree.iter_nearest(points[17])
        first = next(iterator)
        assert first.index == 17
        assert first.distance == pytest.approx(0.0, abs=1e-12)

    def test_iterator_exhausts(self, rng):
        points = rng.normal(size=(10, 2))
        tree = RTreeIndex(points, page_size=4)
        emitted = list(tree.iter_nearest(np.zeros(2)))
        assert len(emitted) == 10

    def test_rejects_bad_query(self, rng):
        tree = RTreeIndex(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="query"):
            next(tree.iter_nearest(np.zeros(2)))
