"""Tests for the shared search result types."""

import numpy as np
import pytest

from repro.search.results import (
    KnnResult,
    Neighbor,
    QueryStats,
    combine_stats,
    validate_corpus,
    validate_k,
    validate_query,
)


class TestQueryStats:
    def test_pruning_fraction(self):
        stats = QueryStats(points_scanned=25)
        assert stats.pruning_fraction(100) == pytest.approx(0.75)

    def test_full_scan_is_zero(self):
        assert QueryStats(points_scanned=10).pruning_fraction(10) == 0.0

    def test_overcounted_scans_raise(self):
        # Scanning more distinct points than the corpus holds is always
        # an index accounting bug; surfacing it beats a silent 0.0.
        with pytest.raises(ValueError, match="double-counted"):
            QueryStats(points_scanned=15).pruning_fraction(10)

    def test_rejects_nonpositive_total(self):
        with pytest.raises(ValueError):
            QueryStats().pruning_fraction(0)

    def test_reduced_scans_do_not_count_against_pruning(self):
        # A screened index reads every reduced row but refines few full
        # rows; the pruning win is the full-width rows it skipped.
        stats = QueryStats(points_scanned=5, reduced_rows_scanned=100)
        assert stats.pruning_fraction(100) == pytest.approx(0.95)


class TestCombineStats:
    def test_all_counters_are_summed(self):
        total = combine_stats(
            [
                QueryStats(
                    points_scanned=3,
                    nodes_visited=2,
                    nodes_pruned=7,
                    reduced_rows_scanned=50,
                    candidates_generated=9,
                ),
                QueryStats(
                    points_scanned=4,
                    nodes_visited=1,
                    nodes_pruned=6,
                    reduced_rows_scanned=50,
                    candidates_generated=11,
                ),
            ]
        )
        assert total == QueryStats(
            points_scanned=7,
            nodes_visited=3,
            nodes_pruned=13,
            reduced_rows_scanned=100,
            candidates_generated=20,
        )

    def test_empty_is_zero(self):
        assert combine_stats([]) == QueryStats()


class TestKnnResult:
    def test_index_and_distance_arrays(self):
        result = KnnResult(
            neighbors=(Neighbor(3, 1.5), Neighbor(7, 2.5)),
        )
        assert np.array_equal(result.indices, [3, 7])
        assert np.allclose(result.distances, [1.5, 2.5])

    def test_empty(self):
        result = KnnResult(neighbors=())
        assert result.indices.size == 0


class TestValidators:
    def test_validate_corpus_passes_good(self, rng):
        array = validate_corpus(rng.normal(size=(4, 2)))
        assert array.dtype == np.float64

    def test_validate_corpus_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            validate_corpus([1.0, 2.0])

    def test_validate_query_checks_width(self):
        with pytest.raises(ValueError, match="length 3"):
            validate_query([1.0], 3)

    def test_validate_k_bounds(self):
        assert validate_k(3, 5) == 3
        with pytest.raises(ValueError):
            validate_k(0, 5)
        with pytest.raises(ValueError):
            validate_k(6, 5)
