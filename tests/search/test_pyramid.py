"""Tests for the Pyramid-Technique index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.search.bruteforce import BruteForceIndex
from repro.search.pyramid import PyramidIndex


class TestPyramidIndex:
    def test_knn_agrees_with_bruteforce(self, rng):
        points = rng.normal(size=(200, 5))
        pyramid = PyramidIndex(points)
        reference = BruteForceIndex(points)
        for _ in range(15):
            query = rng.normal(size=5)
            assert np.array_equal(
                pyramid.query(query, k=4).indices,
                reference.query(query, k=4).indices,
            )

    def test_range_agrees_with_bruteforce(self, rng):
        points = rng.normal(size=(150, 4))
        pyramid = PyramidIndex(points)
        reference = BruteForceIndex(points)
        for _ in range(15):
            query = rng.normal(size=4)
            radius = float(rng.uniform(0.1, 3.0))
            assert np.array_equal(
                pyramid.range_query(query, radius).indices,
                reference.range_query(query, radius).indices,
            )

    def test_self_query(self, rng):
        points = rng.normal(size=(50, 3))
        result = PyramidIndex(points).query(points[11], k=1)
        assert result.neighbors[0].index == 11
        assert result.neighbors[0].distance == pytest.approx(0.0, abs=1e-12)

    def test_small_range_scans_few_points(self, rng):
        points = rng.uniform(size=(3000, 3))
        result = PyramidIndex(points).range_query(np.full(3, 0.3), 0.05)
        assert result.stats.points_scanned < 300

    def test_duplicates(self):
        points = np.ones((12, 4))
        result = PyramidIndex(points).query(np.ones(4), k=3)
        assert list(result.indices) == [0, 1, 2]

    def test_constant_dimension(self, rng):
        points = rng.normal(size=(60, 3))
        points[:, 1] = 7.0
        pyramid = PyramidIndex(points)
        reference = BruteForceIndex(points)
        query = rng.normal(size=3)
        assert np.array_equal(
            pyramid.query(query, k=5).indices,
            reference.query(query, k=5).indices,
        )

    def test_far_outside_query(self, rng):
        points = rng.uniform(size=(80, 4))
        pyramid = PyramidIndex(points)
        reference = BruteForceIndex(points)
        query = np.full(4, 50.0)
        assert np.array_equal(
            pyramid.query(query, k=3).indices,
            reference.query(query, k=3).indices,
        )

    def test_zero_radius(self, rng):
        points = rng.normal(size=(40, 2))
        result = PyramidIndex(points).range_query(points[5], 0.0)
        assert 5 in result.indices.tolist()

    def test_rejects_negative_radius(self, rng):
        with pytest.raises(ValueError, match="radius"):
            PyramidIndex(rng.normal(size=(10, 2))).range_query(np.zeros(2), -1.0)

    def test_rejects_bad_query(self, rng):
        with pytest.raises(ValueError, match="query"):
            PyramidIndex(rng.normal(size=(10, 3))).query(np.zeros(2), k=1)

    def test_knn_never_scans_a_point_twice(self, rng):
        # Radius-doubling k-NN revisits cells across rounds; each point
        # must still be scanned (and counted) at most once, or
        # pruning_fraction blows up on the over-count.
        points = rng.normal(size=(300, 4))
        index = PyramidIndex(points)
        for _ in range(10):
            # Far-away queries force several expansion rounds.
            query = rng.normal(size=4) * 5.0
            stats = index.query(query, k=7).stats
            assert stats.points_scanned <= index.n_points
            assert stats.pruning_fraction(index.n_points) >= 0.0

    def test_one_dimensional(self, rng):
        points = rng.normal(size=(100, 1))
        pyramid = PyramidIndex(points)
        reference = BruteForceIndex(points)
        query = rng.normal(size=1)
        assert np.array_equal(
            pyramid.query(query, k=5).indices,
            reference.query(query, k=5).indices,
        )


@st.composite
def pyramid_cases(draw):
    n = draw(st.integers(2, 30))
    d = draw(st.integers(1, 5))
    # Flush magnitudes below 1e-6 to zero: squaring denormal-range values
    # underflows in the (raw-coordinate) brute-force reference while the
    # pyramid's normalized arithmetic does not — a float artifact, not a
    # disagreement between the indexes.
    elements = st.floats(
        min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
    ).map(lambda v: 0.0 if abs(v) < 1e-6 else v)
    corpus = draw(arrays(np.float64, (n, d), elements=elements))
    query = draw(arrays(np.float64, (d,), elements=elements))
    radius = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
    k = draw(st.integers(1, n))
    return corpus, query, radius, k


class TestPyramidProperties:
    @given(pyramid_cases())
    @settings(max_examples=80, deadline=None)
    def test_range_exactness(self, case):
        corpus, query, radius, _ = case
        expected = BruteForceIndex(corpus).range_query(query, radius)
        actual = PyramidIndex(corpus).range_query(query, radius)
        assert np.array_equal(actual.indices, expected.indices)

    @given(pyramid_cases())
    @settings(max_examples=80, deadline=None)
    def test_knn_exactness(self, case):
        corpus, query, _, k = case
        expected = BruteForceIndex(corpus).query(query, k)
        actual = PyramidIndex(corpus).query(query, k)
        assert np.array_equal(actual.indices, expected.indices)
