"""Tests for repro.core.coherence — the paper's central model."""

import numpy as np
import pytest

from repro.core.coherence import (
    UNIFORM_BASELINE_CP,
    analyze_coherence,
    coherence_factors,
    coherence_probabilities,
    contribution_vector,
    dataset_coherence,
)
from repro.linalg.pca import fit_pca
from repro.stats.hypothesis_test import null_contribution_test
from repro.stats.normal import symmetric_mass


class TestContributionVector:
    def test_elementwise_product(self):
        result = contribution_vector([1.0, 2.0, 3.0], [0.5, 0.0, -1.0])
        assert np.allclose(result, [0.5, 0.0, -3.0])

    def test_sums_to_projection(self, rng):
        # Equation 1: X . e = sum of the contributions.
        x = rng.normal(size=10)
        e = rng.normal(size=10)
        assert np.sum(contribution_vector(x, e)) == pytest.approx(float(x @ e))

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="equal shapes"):
            contribution_vector([1.0], [1.0, 2.0])


class TestCoherenceFactors:
    def test_single_axis_contribution_is_one(self):
        # The Section 3 closed form: one active dimension gives CF = 1.
        features = np.array([[3.0, 0.0, 0.0], [-1.5, 0.0, 0.0]])
        basis = np.eye(3)[:, :1]
        factors = coherence_factors(features, basis)
        assert np.allclose(factors, 1.0)

    def test_perfect_agreement_reaches_sqrt_d(self):
        d = 9
        features = np.full((1, d), 2.0)
        basis = np.full((d, 1), 1.0 / np.sqrt(d))
        factors = coherence_factors(features, basis)
        assert factors[0, 0] == pytest.approx(np.sqrt(d))

    def test_cauchy_schwarz_upper_bound(self, rng):
        features = rng.normal(size=(40, 12))
        basis = np.linalg.qr(rng.normal(size=(12, 12)))[0]
        factors = coherence_factors(features, basis)
        assert np.all(factors <= np.sqrt(12) + 1e-9)
        assert np.all(factors >= 0.0)

    def test_zero_point_scores_zero(self):
        features = np.zeros((1, 4))
        factors = coherence_factors(features, np.eye(4))
        assert np.all(factors == 0.0)

    def test_matches_reference_implementation(self, rng):
        # The vectorized computation against the per-point Hypothesis 2.1
        # test in repro.stats.
        features = rng.normal(size=(15, 8))
        basis = np.linalg.qr(rng.normal(size=(8, 3)))[0]
        factors = coherence_factors(features, basis)
        for i in range(15):
            for j in range(3):
                reference = null_contribution_test(
                    contribution_vector(features[i], basis[:, j])
                )
                assert factors[i, j] == pytest.approx(
                    reference.coherence_factor, abs=1e-10
                )

    def test_eigenvector_sign_invariance(self, rng):
        features = rng.normal(size=(10, 5))
        e = rng.normal(size=(5, 1))
        assert np.allclose(
            coherence_factors(features, e), coherence_factors(features, -e)
        )

    def test_eigenvector_scaling_invariance(self, rng):
        features = rng.normal(size=(10, 5))
        e = rng.normal(size=(5, 1))
        assert np.allclose(
            coherence_factors(features, e),
            coherence_factors(features, 10.0 * e),
        )

    def test_joint_permutation_invariance(self, rng):
        features = rng.normal(size=(10, 6))
        e = rng.normal(size=(6, 1))
        perm = rng.permutation(6)
        assert np.allclose(
            coherence_factors(features, e),
            coherence_factors(features[:, perm], e[perm]),
        )

    def test_point_scaling_invariance(self, rng):
        features = rng.normal(size=(10, 5))
        e = rng.normal(size=(5, 2))
        assert np.allclose(
            coherence_factors(features, e),
            coherence_factors(features * 7.0, e),
        )

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="rows"):
            coherence_factors(rng.normal(size=(5, 4)), np.eye(3))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            coherence_factors(np.array([[np.nan, 0.0]]), np.eye(2))


class TestCoherenceProbabilities:
    def test_transforms_factors_through_normal_mass(self, rng):
        features = rng.normal(size=(8, 6))
        basis = np.eye(6)
        factors = coherence_factors(features, basis)
        probabilities = coherence_probabilities(features, basis)
        assert np.allclose(probabilities, symmetric_mass(factors))

    def test_range(self, rng):
        features = rng.normal(size=(20, 7))
        probabilities = coherence_probabilities(features, np.eye(7))
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)


class TestDatasetCoherence:
    def test_averages_over_points(self, rng):
        features = rng.normal(size=(12, 5))
        basis = np.eye(5)
        per_point = coherence_probabilities(features, basis)
        assert np.allclose(
            dataset_coherence(features, basis), per_point.mean(axis=0)
        )

    def test_uniform_axis_baseline_is_exact(self, rng):
        # Equation 5: centered uniform data scores exactly 2 Phi(1) - 1
        # along raw axes, for every point with a nonzero coordinate.
        features = rng.uniform(-0.5, 0.5, size=(500, 20))
        features -= features.mean(axis=0)
        values = dataset_coherence(features, np.eye(20))
        assert np.allclose(values, UNIFORM_BASELINE_CP, atol=1e-12)

    def test_correlated_block_scores_above_baseline(self, rng):
        # A direction along which many dimensions agree must clear 0.68.
        z = rng.normal(size=(300, 1))
        features = z @ np.ones((1, 16)) + 0.3 * rng.normal(size=(300, 16))
        features -= features.mean(axis=0)
        direction = np.full((16, 1), 1.0 / 4.0)
        value = dataset_coherence(features, direction)[0]
        assert value > 0.9


class TestUniformBaselineConstant:
    def test_value(self):
        assert UNIFORM_BASELINE_CP == pytest.approx(0.6826894921370859)


class TestAnalyzeCoherence:
    def test_alignment_with_eigenvalues(self, small_dataset):
        pca = fit_pca(small_dataset.features, scale=True)
        analysis = analyze_coherence(pca, small_dataset.features)
        assert analysis.n_components == pca.working_dimensionality
        assert np.array_equal(
            analysis.eigenvalues, pca.decomposition.eigenvalues
        )
        assert analysis.scaled is True

    def test_scatter_points_pairs(self, small_dataset):
        pca = fit_pca(small_dataset.features)
        analysis = analyze_coherence(pca, small_dataset.features)
        points = analysis.scatter_points()
        assert len(points) == analysis.n_components
        cp, ev = points[0]
        assert cp == pytest.approx(float(analysis.coherence_probabilities[0]))
        assert ev == pytest.approx(float(analysis.eigenvalues[0]))

    def test_concepts_beat_noise_tail(self, small_dataset):
        # 4 planted concepts: their eigenvectors must outscore the tail.
        pca = fit_pca(small_dataset.features, scale=True)
        analysis = analyze_coherence(pca, small_dataset.features)
        cp = analysis.coherence_probabilities
        assert cp[:4].min() > cp[4:].max()

    def test_rank_correlation_high_on_clean_data(self, small_dataset):
        pca = fit_pca(small_dataset.features, scale=True)
        analysis = analyze_coherence(pca, small_dataset.features)
        assert analysis.rank_correlation() > 0.5

    def test_rank_correlation_perfect_on_sorted(self):
        from repro.core.coherence import CoherenceAnalysis

        analysis = CoherenceAnalysis(
            eigenvalues=np.array([3.0, 2.0, 1.0]),
            coherence_probabilities=np.array([0.9, 0.8, 0.7]),
            mean_coherence_factors=np.array([3.0, 2.0, 1.0]),
            scaled=False,
        )
        assert analysis.rank_correlation() == pytest.approx(1.0)

    def test_rank_correlation_perfect_negative(self):
        from repro.core.coherence import CoherenceAnalysis

        analysis = CoherenceAnalysis(
            eigenvalues=np.array([3.0, 2.0, 1.0]),
            coherence_probabilities=np.array([0.1, 0.5, 0.9]),
            mean_coherence_factors=np.zeros(3),
            scaled=False,
        )
        assert analysis.rank_correlation() == pytest.approx(-1.0)

    def test_rank_correlation_ties_use_average_ranks(self):
        # Hand-computed Spearman with a tied pair of eigenvalues:
        # eigenvalue ranks are [2.5, 2.5, 1], CP ranks are [3, 2, 1],
        # so r = 1.5 / sqrt(1.5 * 2) = sqrt(3)/2.  The old
        # argsort-of-argsort ranking broke the tie arbitrarily and
        # reported 1.0 here.
        from repro.core.coherence import CoherenceAnalysis

        analysis = CoherenceAnalysis(
            eigenvalues=np.array([2.0, 2.0, 1.0]),
            coherence_probabilities=np.array([0.9, 0.8, 0.7]),
            mean_coherence_factors=np.zeros(3),
            scaled=False,
        )
        assert analysis.rank_correlation() == pytest.approx(
            np.sqrt(3.0) / 2.0
        )

    def test_rank_correlation_matched_ties_are_perfect(self):
        # Ties in the same places on both sides carry no disagreement.
        from repro.core.coherence import CoherenceAnalysis

        analysis = CoherenceAnalysis(
            eigenvalues=np.array([2.0, 2.0, 1.0]),
            coherence_probabilities=np.array([0.9, 0.9, 0.5]),
            mean_coherence_factors=np.zeros(3),
            scaled=False,
        )
        assert analysis.rank_correlation() == pytest.approx(1.0)

    def test_rank_correlation_saturated_profile_is_zero(self):
        # All coherence probabilities saturated at 1.0: no ordering
        # information, so the correlation is defined as 0, not NaN and
        # not the arbitrary value tie-blind ranking used to produce.
        from repro.core.coherence import CoherenceAnalysis

        analysis = CoherenceAnalysis(
            eigenvalues=np.array([3.0, 2.0, 1.0]),
            coherence_probabilities=np.ones(3),
            mean_coherence_factors=np.zeros(3),
            scaled=False,
        )
        assert analysis.rank_correlation() == 0.0

    def test_rank_correlation_needs_two(self):
        from repro.core.coherence import CoherenceAnalysis

        analysis = CoherenceAnalysis(
            eigenvalues=np.array([1.0]),
            coherence_probabilities=np.array([0.5]),
            mean_coherence_factors=np.array([1.0]),
            scaled=False,
        )
        with pytest.raises(ValueError):
            analysis.rank_correlation()

    def test_scaling_raises_coherence(self, rng):
        # Section 2.2: wildly varying scales depress the coherence
        # probability; studentization lifts it.
        from repro.datasets.synthetic import latent_concept_dataset

        data = latent_concept_dataset(
            200, 24, 3, noise_std=0.5, scale_spread=2.0, seed=5
        )
        raw = analyze_coherence(fit_pca(data.features), data.features)
        scaled = analyze_coherence(
            fit_pca(data.features, scale=True), data.features
        )
        assert (
            scaled.coherence_probabilities[:3].mean()
            > raw.coherence_probabilities[:3].mean()
        )
