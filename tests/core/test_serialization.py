"""Tests for reducer serialization."""

import os

import numpy as np
import pytest

from repro.core.reducer import CoherenceReducer
from repro.core.serialization import load_reducer, save_reducer


@pytest.fixture()
def fitted(small_dataset):
    return CoherenceReducer(
        n_components=4, ordering="coherence", scale=True
    ).fit(small_dataset.features)


class TestSerialization:
    def test_roundtrip_transform_exact(self, fitted, small_dataset, tmp_path):
        path = str(tmp_path / "reducer.npz")
        save_reducer(fitted, path)
        loaded = load_reducer(path)
        assert np.array_equal(
            fitted.transform(small_dataset.features),
            loaded.transform(small_dataset.features),
        )

    def test_roundtrip_preserves_configuration(self, fitted, tmp_path):
        path = str(tmp_path / "reducer.npz")
        save_reducer(fitted, path)
        loaded = load_reducer(path)
        assert loaded.ordering == "coherence"
        assert loaded.scale is True
        assert loaded.n_components == 4
        assert loaded.threshold is None
        assert loaded.energy is None
        assert list(loaded.selected_) == list(fitted.selected_)

    def test_roundtrip_preserves_analysis(self, fitted, tmp_path):
        path = str(tmp_path / "reducer.npz")
        save_reducer(fitted, path)
        loaded = load_reducer(path)
        assert np.allclose(
            loaded.analysis_.coherence_probabilities,
            fitted.analysis_.coherence_probabilities,
        )
        assert loaded.retained_variance_fraction() == pytest.approx(
            fitted.retained_variance_fraction()
        )

    def test_threshold_variant_roundtrips(self, small_dataset, tmp_path):
        reducer = CoherenceReducer(threshold=0.05).fit(small_dataset.features)
        path = str(tmp_path / "thr.npz")
        save_reducer(reducer, path)
        loaded = load_reducer(path)
        assert loaded.threshold == pytest.approx(0.05)
        assert loaded.n_components is None
        assert loaded.n_selected == reducer.n_selected

    def test_unscaled_variant_roundtrips(self, small_dataset, tmp_path):
        reducer = CoherenceReducer(n_components=3, scale=False).fit(
            small_dataset.features
        )
        path = str(tmp_path / "raw.npz")
        save_reducer(reducer, path)
        loaded = load_reducer(path)
        assert loaded.scale is False
        assert loaded.pca_.scales is None
        assert np.array_equal(
            reducer.transform(small_dataset.features),
            loaded.transform(small_dataset.features),
        )

    def test_new_queries_after_load(self, fitted, small_dataset, tmp_path, rng):
        path = str(tmp_path / "reducer.npz")
        save_reducer(fitted, path)
        loaded = load_reducer(path)
        queries = rng.normal(size=(5, small_dataset.n_dims))
        assert np.array_equal(
            fitted.transform(queries), loaded.transform(queries)
        )

    def test_unfitted_reducer_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="unfitted"):
            save_reducer(CoherenceReducer(n_components=2), str(tmp_path / "x.npz"))

    def test_file_exists_after_save(self, fitted, tmp_path):
        path = str(tmp_path / "reducer.npz")
        save_reducer(fitted, path)
        assert os.path.exists(path)

    def test_version_check(self, fitted, tmp_path):
        path = str(tmp_path / "reducer.npz")
        save_reducer(fitted, path)
        with np.load(path) as archive:
            contents = {name: archive[name] for name in archive.files}
        contents["format_version"] = np.int64(99)
        np.savez(path, **contents)
        with pytest.raises(ValueError, match="version"):
            load_reducer(path)


class TestWhitenSerialization:
    def test_whiten_roundtrips(self, small_dataset, tmp_path):
        reducer = CoherenceReducer(
            n_components=3, scale=True, whiten=True
        ).fit(small_dataset.features)
        path = str(tmp_path / "whitened.npz")
        save_reducer(reducer, path)
        loaded = load_reducer(path)
        assert loaded.whiten is True
        assert np.array_equal(
            reducer.transform(small_dataset.features),
            loaded.transform(small_dataset.features),
        )
