"""Tests for the automatic (largest-gap) cut-off heuristic."""

import numpy as np
import pytest

from repro.core.reducer import CoherenceReducer
from repro.core.selection import select_automatic


class TestSelectAutomatic:
    def test_cuts_at_the_gap(self):
        cp = np.array([0.95, 0.93, 0.92, 0.55, 0.52, 0.50])
        assert list(select_automatic(cp)) == [0, 1, 2]

    def test_flat_spectrum_keeps_everything(self):
        cp = np.full(10, 0.68) + np.linspace(0, 0.02, 10)
        assert select_automatic(cp).size == 10

    def test_single_component(self):
        assert list(select_automatic(np.array([0.8]))) == [0]

    def test_gap_position_respects_coherence_order(self):
        # Concepts hidden at the array's end must still be selected.
        cp = np.array([0.5, 0.52, 0.95, 0.94])
        selected = select_automatic(cp)
        assert set(selected.tolist()) == {2, 3}

    def test_tie_break_forwarded(self):
        cp = np.array([0.9, 0.9, 0.4])
        eigenvalues = np.array([1.0, 5.0, 2.0])
        selected = select_automatic(cp, tie_break=eigenvalues)
        assert list(selected) == [1, 0]

    def test_custom_flat_gap(self):
        cp = np.array([0.8, 0.72, 0.7])
        # Largest gap 0.08: flat under a 0.1 threshold, real under 0.05.
        assert select_automatic(cp, flat_gap=0.1).size == 3
        assert select_automatic(cp, flat_gap=0.05).size == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            select_automatic(np.array([]))
        with pytest.raises(ValueError, match="flat_gap"):
            select_automatic(np.array([0.5, 0.4]), flat_gap=0.0)


class TestAutomaticReducer:
    def test_recovers_planted_noise_structure(self):
        from repro.datasets.uci_like import noisy_dataset_b

        noisy = noisy_dataset_b(seed=0)
        reducer = CoherenceReducer(ordering="automatic").fit(noisy.features)
        n_noise = len(noisy.metadata["corrupted_dims"])
        # The automatic cut keeps the concepts, not the planted noise.
        assert not set(reducer.selected_.tolist()) & set(range(n_noise))
        assert reducer.n_selected <= 15

    def test_refuses_to_reduce_uniform_data(self):
        from repro.datasets.synthetic import uniform_cube

        data = uniform_cube(400, 20, seed=0)
        reducer = CoherenceReducer(ordering="automatic").fit(data.features)
        assert reducer.n_selected == 20

    def test_incompatible_with_explicit_budget(self):
        with pytest.raises(ValueError, match="automatic"):
            CoherenceReducer(ordering="automatic", n_components=5)
        with pytest.raises(ValueError, match="automatic"):
            CoherenceReducer(ordering="automatic", threshold=0.01)
