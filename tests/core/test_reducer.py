"""Tests for repro.core.reducer.CoherenceReducer."""

import numpy as np
import pytest

from repro.core.reducer import CoherenceReducer
from repro.datasets.synthetic import latent_concept_dataset


class TestConstruction:
    def test_rejects_unknown_ordering(self):
        with pytest.raises(ValueError, match="ordering"):
            CoherenceReducer(ordering="variance")

    def test_rejects_multiple_budgets(self):
        with pytest.raises(ValueError, match="at most one"):
            CoherenceReducer(n_components=3, threshold=0.1)
        with pytest.raises(ValueError, match="at most one"):
            CoherenceReducer(energy=0.9, threshold=0.1)

    def test_rejects_nonpositive_components(self):
        with pytest.raises(ValueError, match="positive"):
            CoherenceReducer(n_components=0)


class TestFitTransform:
    def test_output_shape(self, small_dataset):
        reducer = CoherenceReducer(n_components=3)
        reduced = reducer.fit_transform(small_dataset.features)
        assert reduced.shape == (small_dataset.n_samples, 3)
        assert reducer.n_selected == 3

    def test_transform_before_fit_raises(self, small_dataset):
        with pytest.raises(RuntimeError, match="not fitted"):
            CoherenceReducer(n_components=2).transform(small_dataset.features)

    def test_fit_transform_equals_fit_then_transform(self, small_dataset):
        a = CoherenceReducer(n_components=3).fit_transform(small_dataset.features)
        reducer = CoherenceReducer(n_components=3).fit(small_dataset.features)
        b = reducer.transform(small_dataset.features)
        assert np.allclose(a, b)

    def test_full_rank_is_isometry(self, small_dataset):
        reducer = CoherenceReducer()  # keeps everything
        reduced = reducer.fit_transform(small_dataset.features)
        original = small_dataset.features - small_dataset.features.mean(axis=0)
        assert np.linalg.norm(reduced[0] - reduced[1]) == pytest.approx(
            np.linalg.norm(original[0] - original[1]), rel=1e-9
        )

    def test_eigenvalue_ordering_takes_prefix(self, small_dataset):
        reducer = CoherenceReducer(n_components=4, ordering="eigenvalue")
        reducer.fit(small_dataset.features)
        assert list(reducer.selected_) == [0, 1, 2, 3]

    def test_coherence_ordering_sorted_by_cp(self, small_dataset):
        reducer = CoherenceReducer(n_components=4, ordering="coherence")
        reducer.fit(small_dataset.features)
        cp = reducer.analysis_.coherence_probabilities
        selected_cp = cp[reducer.selected_]
        assert np.all(np.diff(selected_cp) <= 1e-12)
        assert selected_cp[0] == pytest.approx(cp.max())

    def test_threshold_budget(self, small_dataset):
        reducer = CoherenceReducer(threshold=0.01)
        reducer.fit(small_dataset.features)
        eigenvalues = reducer.analysis_.eigenvalues
        cutoff = 0.01 * eigenvalues[0]
        assert reducer.n_selected == int(np.sum(eigenvalues >= cutoff))

    def test_energy_budget(self, small_dataset):
        reducer = CoherenceReducer(energy=0.9)
        reducer.fit(small_dataset.features)
        assert reducer.retained_variance_fraction() >= 0.9

    def test_n_components_exceeding_available_raises(self, small_dataset):
        reducer = CoherenceReducer(n_components=small_dataset.n_dims + 1)
        with pytest.raises(ValueError, match="exceeds"):
            reducer.fit(small_dataset.features)

    def test_scale_drops_constant_columns(self, rng):
        features = rng.normal(size=(50, 5))
        features[:, 2] = 1.0
        reducer = CoherenceReducer(n_components=2, scale=True)
        reduced = reducer.fit_transform(features)
        assert reduced.shape == (50, 2)

    def test_transform_new_points(self, small_dataset):
        reducer = CoherenceReducer(n_components=3).fit(small_dataset.features)
        new = reducer.transform(small_dataset.features[:5] + 0.01)
        assert new.shape == (5, 3)

    def test_jacobi_backend(self, small_dataset):
        a = CoherenceReducer(n_components=3, eigen_method="numpy").fit(
            small_dataset.features
        )
        b = CoherenceReducer(n_components=3, eigen_method="jacobi").fit(
            small_dataset.features
        )
        assert np.allclose(
            a.analysis_.eigenvalues, b.analysis_.eigenvalues, atol=1e-8
        )
        assert list(a.selected_) == list(b.selected_)


class TestBehaviourOnPlantedData:
    def test_coherence_selection_recovers_concepts_under_noise(self):
        # Plant 3 concepts, then 2 huge-variance uncorrelated columns.
        # Eigenvalue order picks the noise; coherence order must not.
        rng = np.random.default_rng(0)
        data = latent_concept_dataset(
            300, 20, 3, noise_std=0.5, seed=1
        ).features.copy()
        data[:, 5] = rng.uniform(-60, 60, size=300)
        data[:, 11] = rng.uniform(-60, 60, size=300)

        eig = CoherenceReducer(n_components=3, ordering="eigenvalue").fit(data)
        coh = CoherenceReducer(n_components=3, ordering="coherence").fit(data)

        # The top-2 eigenvalues are the planted noise columns.
        noise_axes = {5, 11}
        top_vectors = eig.pca_.decomposition.eigenvectors[:, :2]
        dominated = {int(np.argmax(np.abs(top_vectors[:, j]))) for j in range(2)}
        assert dominated == noise_axes

        # Coherence selection skips both noise components.
        assert not set(coh.selected_.tolist()) & {0, 1}

    def test_describe_contents(self, small_dataset):
        reducer = CoherenceReducer(n_components=3, scale=True).fit(
            small_dataset.features
        )
        info = reducer.describe()
        assert info["n_selected"] == 3
        assert info["scaled"] is True
        assert 0.0 <= info["retained_variance"] <= 1.0
        assert len(info["selected_indices"]) == 3

    def test_retained_variance_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CoherenceReducer().retained_variance_fraction()


class TestWhitening:
    def test_whitened_components_have_unit_variance(self, small_dataset):
        reducer = CoherenceReducer(n_components=4, scale=True, whiten=True)
        out = reducer.fit_transform(small_dataset.features)
        assert np.allclose(out.var(axis=0), 1.0, atol=1e-9)

    def test_whiten_rescales_plain_projection(self, small_dataset):
        plain = CoherenceReducer(n_components=4, scale=True).fit(
            small_dataset.features
        )
        whitened = CoherenceReducer(n_components=4, scale=True, whiten=True).fit(
            small_dataset.features
        )
        eigenvalues = plain.analysis_.eigenvalues[plain.selected_]
        expected = plain.transform(small_dataset.features) / np.sqrt(eigenvalues)
        assert np.allclose(
            whitened.transform(small_dataset.features), expected
        )

    def test_whiten_on_new_queries_uses_training_scales(self, small_dataset, rng):
        reducer = CoherenceReducer(n_components=3, whiten=True).fit(
            small_dataset.features
        )
        queries = rng.normal(size=(5, small_dataset.n_dims)) * 100.0
        out = reducer.transform(queries)
        # Not unit variance (different data) — but finite and consistent
        # with the training eigenvalue scaling.
        eigenvalues = reducer.analysis_.eigenvalues[reducer.selected_]
        plain = reducer.pca_.transform(queries, component_indices=reducer.selected_)
        assert np.allclose(out, plain / np.sqrt(eigenvalues))

    def test_describe_reports_whitening(self, small_dataset):
        reducer = CoherenceReducer(n_components=2, whiten=True).fit(
            small_dataset.features
        )
        assert reducer.describe()["whitened"] is True

    def test_zero_eigenvalue_component_left_unscaled(self, rng):
        # Rank-deficient data: trailing eigenvalues are ~0; whitening
        # must not divide by zero.
        base = rng.normal(size=(40, 2))
        features = np.hstack([base, base @ rng.normal(size=(2, 3))])
        reducer = CoherenceReducer(whiten=True).fit(features)
        out = reducer.transform(features)
        assert np.all(np.isfinite(out))
