"""Tests for repro.core.selection strategies."""

import numpy as np
import pytest

from repro.core.selection import (
    select_by_coherence,
    select_by_eigenvalue,
    select_by_energy,
    select_by_threshold,
)


EIGENVALUES = np.array([10.0, 5.0, 2.0, 1.0, 0.5, 0.05])


class TestSelectByEigenvalue:
    def test_prefix(self):
        assert list(select_by_eigenvalue(EIGENVALUES, 3)) == [0, 1, 2]

    def test_full(self):
        assert list(select_by_eigenvalue(EIGENVALUES, 6)) == list(range(6))

    def test_rejects_zero_k(self):
        with pytest.raises(ValueError):
            select_by_eigenvalue(EIGENVALUES, 0)

    def test_rejects_k_beyond_size(self):
        with pytest.raises(ValueError):
            select_by_eigenvalue(EIGENVALUES, 7)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="descending"):
            select_by_eigenvalue([1.0, 2.0], 1)

    def test_rejects_negative_eigenvalues(self):
        with pytest.raises(ValueError, match="non-negative"):
            select_by_eigenvalue([1.0, -1.0], 1)


class TestSelectByCoherence:
    def test_orders_by_probability(self):
        cp = np.array([0.5, 0.9, 0.7])
        assert list(select_by_coherence(cp, 3)) == [1, 2, 0]

    def test_top_k(self):
        cp = np.array([0.5, 0.9, 0.7, 0.95])
        assert list(select_by_coherence(cp, 2)) == [3, 1]

    def test_tie_break_by_eigenvalue(self):
        cp = np.array([0.8, 0.8, 0.8])
        eigenvalues = np.array([1.0, 3.0, 2.0])
        assert list(select_by_coherence(cp, 3, tie_break=eigenvalues)) == [1, 2, 0]

    def test_default_tie_break_prefers_larger_eigenvalue(self):
        # Position encodes eigenvalue rank: ties resolve to lower index.
        cp = np.array([0.8, 0.8, 0.9])
        assert list(select_by_coherence(cp, 3)) == [2, 0, 1]

    def test_rejects_out_of_range_probabilities(self):
        with pytest.raises(ValueError, match="0, 1"):
            select_by_coherence(np.array([1.5]), 1)
        with pytest.raises(ValueError, match="0, 1"):
            select_by_coherence(np.array([-0.2]), 1)

    def test_rejects_misaligned_tie_break(self):
        with pytest.raises(ValueError, match="align"):
            select_by_coherence(np.array([0.5, 0.6]), 1, tie_break=np.array([1.0]))

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            select_by_coherence(np.array([0.5]), 2)

    def test_agrees_with_eigenvalue_order_when_correlated(self):
        # When CP ranks match eigenvalue ranks, both rules select the
        # same set (the clean-data regime of Section 4).
        cp = np.array([0.99, 0.95, 0.9, 0.6, 0.5, 0.4])
        coherent = set(select_by_coherence(cp, 3).tolist())
        classical = set(select_by_eigenvalue(EIGENVALUES, 3).tolist())
        assert coherent == classical


class TestSelectByThreshold:
    def test_default_one_percent(self):
        kept = select_by_threshold(EIGENVALUES)
        # Cutoff 0.1: keeps everything except 0.05.
        assert list(kept) == [0, 1, 2, 3, 4]

    def test_explicit_fraction(self):
        kept = select_by_threshold(EIGENVALUES, fraction=0.10)
        # Cutoff 1.0: keeps 10, 5, 2, 1.
        assert list(kept) == [0, 1, 2, 3]

    def test_always_keeps_leading_component(self):
        kept = select_by_threshold(np.array([5.0, 0.0]), fraction=1.0)
        assert list(kept) == [0]

    def test_fraction_zero_keeps_all(self):
        assert select_by_threshold(EIGENVALUES, 0.0).size == 6

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            select_by_threshold(EIGENVALUES, 1.5)


class TestSelectByEnergy:
    def test_smallest_sufficient_prefix(self):
        # Total 18.55; 95% needs 10 + 5 + 2 + 1 = 18 (97.0%).
        kept = select_by_energy(EIGENVALUES, 0.95)
        assert list(kept) == [0, 1, 2, 3]

    def test_low_target_keeps_one(self):
        kept = select_by_energy(EIGENVALUES, 0.5)
        assert list(kept) == [0]

    def test_full_energy_keeps_all(self):
        kept = select_by_energy(EIGENVALUES, 1.0)
        assert kept.size == 6

    def test_zero_spectrum(self):
        assert list(select_by_energy(np.zeros(3), 0.9)) == [0]

    def test_rejects_bad_energy(self):
        with pytest.raises(ValueError):
            select_by_energy(EIGENVALUES, 0.0)
        with pytest.raises(ValueError):
            select_by_energy(EIGENVALUES, 1.5)

    def test_exact_boundary(self):
        values = np.array([3.0, 1.0])
        # 3/4 = 0.75 exactly.
        assert list(select_by_energy(values, 0.75)) == [0]
