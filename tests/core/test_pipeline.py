"""Tests for repro.core.pipeline.SimilaritySearchPipeline."""

import numpy as np
import pytest

from repro.core.pipeline import SimilaritySearchPipeline
from repro.core.reducer import CoherenceReducer
from repro.search.results import BatchKnnResult


class TestPipeline:
    def test_rejects_unknown_index(self):
        with pytest.raises(ValueError, match="index_type"):
            SimilaritySearchPipeline(index_type="btree")

    def test_query_before_fit_raises(self, small_dataset):
        pipeline = SimilaritySearchPipeline()
        with pytest.raises(RuntimeError, match="not fitted"):
            pipeline.query(small_dataset.features[0])

    def test_reduced_dimensionality(self, small_dataset):
        pipeline = SimilaritySearchPipeline(
            reducer=CoherenceReducer(n_components=5)
        ).fit(small_dataset.features)
        assert pipeline.reduced_dimensionality == 5

    def test_default_reducer_keeps_everything_scaled(self, small_dataset):
        pipeline = SimilaritySearchPipeline().fit(small_dataset.features)
        assert pipeline.reduced_dimensionality == small_dataset.n_dims

    @pytest.mark.parametrize(
        "index_type",
        ["bruteforce", "kdtree", "rtree", "vafile", "pyramid", "idistance"],
    )
    def test_all_index_types_agree(self, small_dataset, index_type):
        reference = SimilaritySearchPipeline(
            reducer=CoherenceReducer(n_components=4), index_type="bruteforce"
        ).fit(small_dataset.features)
        pipeline = SimilaritySearchPipeline(
            reducer=CoherenceReducer(n_components=4), index_type=index_type
        ).fit(small_dataset.features)
        for i in (0, 17, 63):
            expected = reference.query(small_dataset.features[i], k=4)
            actual = pipeline.query(small_dataset.features[i], k=4)
            assert np.array_equal(actual.indices, expected.indices)

    def test_corpus_point_is_its_own_nearest_neighbor(self, small_dataset):
        pipeline = SimilaritySearchPipeline(
            reducer=CoherenceReducer(n_components=4)
        ).fit(small_dataset.features)
        result = pipeline.query(small_dataset.features[7], k=1)
        assert result.neighbors[0].index == 7
        assert result.neighbors[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_query_rejects_2d_input(self, small_dataset):
        # A batch passed to query() used to be silently answered for its
        # first row only; it must be an error pointing at query_batch.
        pipeline = SimilaritySearchPipeline(
            reducer=CoherenceReducer(n_components=3)
        ).fit(small_dataset.features)
        with pytest.raises(ValueError, match="query_batch"):
            pipeline.query(small_dataset.features[:4], k=2)

    def test_query_batch(self, small_dataset):
        pipeline = SimilaritySearchPipeline(
            reducer=CoherenceReducer(n_components=3)
        ).fit(small_dataset.features)
        results = pipeline.query_batch(small_dataset.features[:4], k=2)
        assert len(results) == 4
        for i, result in enumerate(results):
            assert result.neighbors[0].index == i

    def test_query_batch_returns_batch_result(self, small_dataset):
        pipeline = SimilaritySearchPipeline(
            reducer=CoherenceReducer(n_components=3)
        ).fit(small_dataset.features)
        batch = pipeline.query_batch(small_dataset.features[:6], k=2)
        assert isinstance(batch, BatchKnnResult)
        assert batch.indices.shape == (6, 2)
        assert batch.stats.points_scanned > 0

    def test_query_batch_rejects_1d_input(self, small_dataset):
        pipeline = SimilaritySearchPipeline(
            reducer=CoherenceReducer(n_components=3)
        ).fit(small_dataset.features)
        with pytest.raises(ValueError, match="2-d"):
            pipeline.query_batch(small_dataset.features[0], k=2)

    def test_query_batch_matches_query(self, small_dataset):
        pipeline = SimilaritySearchPipeline(
            reducer=CoherenceReducer(n_components=4), index_type="kdtree"
        ).fit(small_dataset.features)
        batch = pipeline.query_batch(
            small_dataset.features[:8], k=3, n_workers=2
        )
        for i, result in enumerate(batch):
            expected = pipeline.query(small_dataset.features[i], k=3)
            assert np.array_equal(result.indices, expected.indices)
            # Not bit-identical at the pipeline level: the reducer
            # transforms the whole batch in one matmul, whose BLAS
            # blocking can differ from the single-row transform by ulps.
            # (Index-level bit-identity is pinned in test_batch.py.)
            assert np.allclose(
                result.distances, expected.distances, atol=1e-9
            )

    def test_neighbors_sorted_by_distance(self, small_dataset):
        pipeline = SimilaritySearchPipeline(
            reducer=CoherenceReducer(n_components=4)
        ).fit(small_dataset.features)
        distances = pipeline.query(small_dataset.features[0], k=6).distances
        assert np.all(np.diff(distances) >= 0.0)
