"""Tests for repro.core.diagnosis — the reducibility verdict."""

import pytest

from repro.core.coherence import UNIFORM_BASELINE_CP
from repro.core.diagnosis import diagnose_reducibility
from repro.datasets.synthetic import latent_concept_dataset, uniform_cube


class TestDiagnoseReducibility:
    def test_concept_data_is_reducible(self):
        data = latent_concept_dataset(250, 24, 3, noise_std=0.8, seed=0)
        diagnosis = diagnose_reducibility(data.features)
        assert diagnosis.verdict == "reducible"
        assert diagnosis.n_concepts >= 1
        assert diagnosis.n_concepts < diagnosis.n_components

    def test_uniform_data_is_noisy(self):
        data = uniform_cube(500, 25, seed=0)
        diagnosis = diagnose_reducibility(data.features)
        assert diagnosis.verdict == "noisy"
        assert diagnosis.n_concepts == 0

    def test_gaussian_noise_is_noisy(self, rng):
        diagnosis = diagnose_reducibility(rng.normal(size=(400, 20)))
        assert diagnosis.verdict == "noisy"

    def test_baseline_constant(self):
        data = uniform_cube(100, 5, seed=1)
        diagnosis = diagnose_reducibility(data.features)
        assert diagnosis.baseline == pytest.approx(UNIFORM_BASELINE_CP)

    def test_concept_indices_align_with_spectrum(self):
        data = latent_concept_dataset(250, 24, 3, noise_std=0.8, seed=0)
        diagnosis = diagnose_reducibility(data.features)
        for i in diagnosis.concept_indices:
            assert (
                diagnosis.coherence_probabilities[i]
                >= diagnosis.concept_threshold
            )
        assert diagnosis.concept_indices.size == diagnosis.n_concepts

    def test_spread_larger_for_structured_data(self):
        structured = latent_concept_dataset(250, 24, 3, noise_std=0.8, seed=0)
        noise = uniform_cube(250, 24, seed=0)
        a = diagnose_reducibility(structured.features)
        b = diagnose_reducibility(noise.features)
        assert a.cp_spread > b.cp_spread

    def test_summary_mentions_verdict(self):
        data = uniform_cube(100, 8, seed=0)
        summary = diagnose_reducibility(data.features).summary()
        assert "noisy" in summary
        assert "0/8" in summary

    def test_unscaled_diagnosis_runs(self):
        data = latent_concept_dataset(200, 15, 3, seed=0)
        diagnosis = diagnose_reducibility(data.features, scale=False)
        assert diagnosis.n_components == 15

    def test_rejects_bad_margin(self):
        data = uniform_cube(50, 4, seed=0)
        with pytest.raises(ValueError, match="margin"):
            diagnose_reducibility(data.features, concept_margin=0.0)
        with pytest.raises(ValueError, match="margin"):
            diagnose_reducibility(data.features, concept_margin=0.9)

    def test_custom_margin_changes_concept_count(self):
        data = latent_concept_dataset(250, 24, 3, noise_std=0.8, seed=0)
        loose = diagnose_reducibility(data.features, concept_margin=0.01)
        strict = diagnose_reducibility(data.features, concept_margin=0.3)
        assert loose.n_concepts >= strict.n_concepts
