"""Mutable serving: every answer bit-identical to a fresh rebuild.

The :class:`MutableIndexServer` contract is absolute — at *every*
instant of an insert/delete stream, ``query``/``query_batch`` answer
exactly like ``build_index(kind, live_rows)`` with local indices mapped
to global ids: same neighbors, same bit-identical distances, same
(distance, lower id) tie-break.  These tests drive seeded streams and
check that identity at every step, through manual and size-triggered
compactions, across the hot swap with queries in flight, after drift
rebuilds, and across a restart-resume.  The failure paths are loud:
non-exact kinds refused at construction, stale row ids refused,
double-deletes raise, and an emptied rowset refuses to compact.
"""

import os
import threading

import numpy as np
import pytest

from repro.serve import MutableIndexServer, MutationError
from repro.serve.errors import ServerClosedError
from repro.serve.mutation import live_reference_index


def _assert_matches_reference(server, probes, k=3):
    """Every probe answered identically to a fresh rebuild, bit for bit."""
    reference, live_ids = live_reference_index(server)
    k = min(k, server.n_live)
    for probe in probes:
        served = server.query(probe, k)
        expected = reference.query(probe, k)
        assert [n.index for n in served.neighbors] == [
            int(live_ids[n.index]) for n in expected.neighbors
        ]
        assert [n.distance for n in served.neighbors] == [
            n.distance for n in expected.neighbors
        ]


@pytest.fixture
def data():
    rng = np.random.default_rng(11)
    corpus = rng.standard_normal((40, 5))
    probes = rng.standard_normal((6, 5))
    return corpus, probes, rng


class TestIdentityThroughMutation:
    @pytest.mark.parametrize("kind", ["bruteforce", "kdtree", "vafile"])
    def test_identity_at_every_step(self, tmp_path, data, kind):
        corpus, probes, rng = data
        with MutableIndexServer(
            os.path.join(tmp_path, kind), corpus, kind=kind
        ) as server:
            live = set(range(40))
            for step in range(30):
                op = rng.random()
                if op < 0.5 or len(live) < 5:
                    live.add(server.insert(rng.standard_normal(5)))
                else:
                    victim = int(rng.choice(sorted(live)))
                    server.delete(victim)
                    live.discard(victim)
                assert server.n_live == len(live)
                _assert_matches_reference(server, probes)

    def test_identity_across_manual_compaction(self, tmp_path, data):
        corpus, probes, rng = data
        with MutableIndexServer(
            os.path.join(tmp_path, "c"), corpus, kind="kdtree"
        ) as server:
            for _ in range(10):
                server.insert(rng.standard_normal(5))
            server.delete(3)
            server.delete(41)  # a memtable row
            assert server.generation_id == 0
            info = server.compact()
            assert info.generation_id == 1
            assert server.generation_id == 1
            assert server.memtable_ops == 0
            assert server.n_live == 40 + 10 - 2
            _assert_matches_reference(server, probes)
            # Mutations keep flowing after the swap.
            server.insert(rng.standard_normal(5))
            server.delete(0)
            _assert_matches_reference(server, probes)

    def test_queries_in_flight_across_hot_swap(self, tmp_path, data):
        """The swap never drops or mis-answers concurrent queries."""
        corpus, probes, rng = data
        with MutableIndexServer(
            os.path.join(tmp_path, "swap"), corpus, kind="bruteforce"
        ) as server:
            for _ in range(12):
                server.insert(rng.standard_normal(5))
            server.delete(5)
            reference, live_ids = live_reference_index(server)
            expected = [
                [
                    (int(live_ids[n.index]), n.distance)
                    for n in reference.query(probe, 3).neighbors
                ]
                for probe in probes
            ]
            errors, answers = [], []

            def hammer():
                try:
                    local = []
                    for _ in range(5):
                        for probe in probes:
                            result = server.query(probe, 3)
                            local.append([
                                (n.index, n.distance)
                                for n in result.neighbors
                            ])
                    answers.append(local)
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=hammer) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            server.compact()
            for thread in threads:
                thread.join()
            assert not errors
            for local in answers:
                for got, want in zip(local, expected * 5):
                    assert got == want

    def test_query_batch_identity(self, tmp_path, data):
        corpus, probes, rng = data
        with MutableIndexServer(
            os.path.join(tmp_path, "b"), corpus, kind="bruteforce"
        ) as server:
            for _ in range(6):
                server.insert(rng.standard_normal(5))
            server.delete(1)
            reference, live_ids = live_reference_index(server)
            batch = server.query_batch(probes, 4)
            expected = reference.query_batch(probes, 4)
            for served, want in zip(batch.results, expected.results):
                assert [n.index for n in served.neighbors] == [
                    int(live_ids[n.index]) for n in want.neighbors
                ]
                assert [n.distance for n in served.neighbors] == [
                    n.distance for n in want.neighbors
                ]

    def test_query_batch_honors_deadline(self, tmp_path, data):
        """Satellite of the deadline contract: batches enforce it too."""
        from repro.serve.errors import DeadlineExceeded

        corpus, probes, _ = data
        with MutableIndexServer(
            os.path.join(tmp_path, "bd"), corpus, kind="bruteforce"
        ) as server:
            batch = server.query_batch(probes, 3, deadline_ms=60_000)
            assert len(batch.results) == probes.shape[0]
            with pytest.raises(DeadlineExceeded):
                server.query_batch(probes, 3, deadline_ms=1e-6)
            with pytest.raises(ValueError, match="deadline_ms"):
                server.query_batch(probes, 3, deadline_ms=-5)

    def test_size_triggered_compaction(self, tmp_path, data):
        corpus, probes, rng = data
        with MutableIndexServer(
            os.path.join(tmp_path, "auto"),
            corpus,
            kind="bruteforce",
            compact_threshold=8,
        ) as server:
            for _ in range(30):
                server.insert(rng.standard_normal(5))
                _assert_matches_reference(server, probes[:2])
            deadline = threading.Event()
            for _ in range(100):
                if server.n_compactions >= 1:
                    break
                deadline.wait(0.05)
            assert server.n_compactions >= 1
            assert server.store.active().reason == "size"
            _assert_matches_reference(server, probes)


class TestDrift:
    def test_drift_compaction_fires_and_stays_identical(self, tmp_path):
        rng = np.random.default_rng(5)
        scales = np.array([2.0, 1.0, 0.2, 0.1])
        corpus = rng.standard_normal((60, 4)) * scales
        probes = rng.standard_normal((4, 4)) * scales
        with MutableIndexServer(
            os.path.join(tmp_path, "drift"),
            corpus,
            kind="projscreen",
            index_kwargs={"subspace_dim": 2},
            drift_threshold=0.85,
        ) as server:
            # Rotate the insert distribution so the frozen basis stops
            # capturing the live energy and the monitor trips.
            for _ in range(60):
                server.insert(rng.standard_normal(4) * scales[::-1])
            for _ in range(200):
                if server.n_drift_compactions >= 1:
                    break
                threading.Event().wait(0.05)
            assert server.n_drift_compactions >= 1
            _assert_matches_reference(server, probes)

    def test_drift_threshold_requires_projscreen(self, tmp_path, data):
        corpus, _, _ = data
        with pytest.raises(MutationError, match="projscreen"):
            MutableIndexServer(
                os.path.join(tmp_path, "x"),
                corpus,
                kind="kdtree",
                drift_threshold=0.9,
            )


class TestRejection:
    @pytest.mark.parametrize("kind", ["lsh", "igrid"])
    def test_non_exact_kinds_refused(self, tmp_path, data, kind):
        corpus, _, _ = data
        with pytest.raises(MutationError, match="exact"):
            MutableIndexServer(
                os.path.join(tmp_path, kind), corpus, kind=kind
            )

    def test_unknown_kind_refused(self, tmp_path, data):
        corpus, _, _ = data
        with pytest.raises(ValueError, match="unknown index kind"):
            MutableIndexServer(
                os.path.join(tmp_path, "u"), corpus, kind="btree"
            )

    def test_stale_row_id_refused(self, tmp_path, data):
        corpus, _, _ = data
        with MutableIndexServer(
            os.path.join(tmp_path, "s"), corpus
        ) as server:
            with pytest.raises(MutationError, match="not fresh"):
                server.insert(np.zeros(5), row_id=10)

    def test_delete_unknown_and_double(self, tmp_path, data):
        corpus, _, rng = data
        with MutableIndexServer(
            os.path.join(tmp_path, "d"), corpus
        ) as server:
            with pytest.raises(KeyError, match="unknown row id"):
                server.delete(999)
            server.delete(7)
            with pytest.raises(KeyError, match="already deleted"):
                server.delete(7)
            gid = server.insert(rng.standard_normal(5))
            server.delete(gid)
            with pytest.raises(KeyError, match="already deleted"):
                server.delete(gid)

    def test_compacting_empty_rowset_refused(self, tmp_path):
        corpus = np.ones((2, 3))
        with MutableIndexServer(
            os.path.join(tmp_path, "e"), corpus
        ) as server:
            server.delete(0)
            server.delete(1)
            with pytest.raises(MutationError, match="empty rowset"):
                server.compact()

    def test_closed_server_refuses_queries(self, tmp_path, data):
        corpus, _, _ = data
        server = MutableIndexServer(os.path.join(tmp_path, "z"), corpus)
        server.close()
        server.close()  # idempotent
        with pytest.raises(ServerClosedError):
            server.query(np.zeros(5), 1)
        with pytest.raises(ServerClosedError):
            server.insert(np.zeros(5))


class TestResume:
    def test_resume_continues_id_sequence(self, tmp_path, data):
        corpus, probes, rng = data
        root = os.path.join(tmp_path, "r")
        with MutableIndexServer(root, corpus, kind="kdtree") as server:
            first = server.insert(rng.standard_normal(5))
            assert first == 40
            server.delete(2)
            server.compact()
        with MutableIndexServer(root, kind="kdtree") as server:
            assert server.n_live == 40
            assert server.generation_id == 1
            # Ids never reuse: the next insert continues the sequence.
            assert server.insert(rng.standard_normal(5)) == 41
            _assert_matches_reference(server, probes)

    def test_resume_replays_uncompacted_memtable(self, tmp_path, data):
        """No compact before shutdown: the WAL alone restores the delta."""
        corpus, probes, rng = data
        root = os.path.join(tmp_path, "w")
        with MutableIndexServer(root, corpus, kind="kdtree") as server:
            for _ in range(7):
                server.insert(rng.standard_normal(5))
            server.delete(3)
            server.delete(42)
            assert server.wal_appends == 9
            expected = [
                [(n.index, n.distance) for n in
                 server.query(probe, 3).neighbors]
                for probe in probes
            ]
        with MutableIndexServer(root, kind="kdtree") as server:
            assert server.generation_id == 0
            assert server.n_live == 45
            assert server.memtable_ops == 9
            assert server.next_row_id == 47
            got = [
                [(n.index, n.distance) for n in
                 server.query(probe, 3).neighbors]
                for probe in probes
            ]
            assert got == expected
            _assert_matches_reference(server, probes)
            # The sequence continues past replayed ids, never reusing.
            assert server.insert(rng.standard_normal(5)) == 47

    def test_resume_replay_respects_size_trigger(self, tmp_path, data):
        """A replayed memtable over the threshold compacts immediately."""
        corpus, _, rng = data
        root = os.path.join(tmp_path, "t")
        with MutableIndexServer(root, corpus) as server:
            for _ in range(6):
                server.insert(rng.standard_normal(5))
        with MutableIndexServer(
            root, compact_threshold=4
        ) as server:
            deadline = threading.Event()
            for _ in range(100):
                if server.n_compactions >= 1:
                    break
                deadline.wait(0.05)
            assert server.n_compactions >= 1
            assert server.memtable_ops == 0

    def test_resume_rejects_kind_mismatch_and_reseed(self, tmp_path, data):
        corpus, _, _ = data
        root = os.path.join(tmp_path, "m")
        with MutableIndexServer(root, corpus, kind="kdtree"):
            pass
        with pytest.raises(MutationError, match="kind"):
            MutableIndexServer(root, kind="bruteforce")
        with pytest.raises(MutationError, match="already initialized"):
            MutableIndexServer(root, corpus, kind="kdtree")

    def test_fresh_root_requires_points(self, tmp_path):
        with pytest.raises(MutationError, match="points="):
            MutableIndexServer(os.path.join(tmp_path, "f"))

    def test_generations_pruned(self, tmp_path, data):
        corpus, _, rng = data
        root = os.path.join(tmp_path, "p")
        with MutableIndexServer(
            root, corpus, keep_generations=2
        ) as server:
            for _ in range(4):
                server.insert(rng.standard_normal(5))
                server.compact()
            kept = [g.generation_id for g in server.store.generations()]
            assert len(kept) == 2
            assert server.generation_id == kept[-1]
