"""Shared fixtures for the serving tests.

The serving stack runs real threads and worker processes, and its
failure-path tests deliberately create hung workers; a bug in the
recovery code could otherwise wedge the whole test session.  Since the
environment has no ``pytest-timeout``, an autouse SIGALRM watchdog
gives every test in this package a hard wall-clock budget on POSIX.
"""

import signal

import pytest

_TEST_TIMEOUT_SECONDS = 120


@pytest.fixture(autouse=True)
def _watchdog(request):
    """Fail (rather than hang) any serve test that exceeds the budget."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - POSIX only
        yield
        return

    def _expired(signum, frame):
        pytest.fail(
            f"{request.node.nodeid} exceeded the "
            f"{_TEST_TIMEOUT_SECONDS}s serve-test watchdog",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(_TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
