"""Crash injection: resume is bit-identical to never having crashed.

The WAL's guarantee under ``wal_sync="always"`` is that the bytes on
disk at *any* acknowledged-op boundary are a complete crash image:
every acked mutation is fsync'd before the ack, and every generation
transition is durable before the manifest repoints.  So copying the
store directory mid-stream *is* a crash (modulo torn writes, which the
torn-tail tests inject separately), and a genuine ``os._exit`` child
process double-checks the equivalence.  These tests cut a seeded
500-op trace at dozens of boundaries — including immediately after
compactions and across injected publish/commit faults — resume from
each image, and demand answers bit-identical (neighbors, distances,
tie-breaks) to the uninterrupted server, for both the single server
and a 3-shard coordinator.
"""

import os
import shutil
import subprocess
import sys

import numpy as np
import pytest

from repro.search.snapshot import GenerationError
from repro.serve import MutableIndexServer
from repro.serve.wal import read_wal
from repro.shard.mutation import MutableShardedServer


def _answers(server, probes, k=3):
    """Exact (id, distance) tuples for every probe — compared with ==."""
    k = min(k, server.n_live)
    return [
        tuple(
            (n.index, n.distance)
            for n in server.query(probe, k).neighbors
        )
        for probe in probes
    ]


@pytest.fixture
def trace_data():
    rng = np.random.default_rng(42)
    corpus = rng.standard_normal((40, 5))
    probes = rng.standard_normal((4, 5))
    return corpus, probes, rng


class TestCrashResumeIdentity:
    def test_single_server_500_op_trace(self, tmp_path, trace_data):
        """Cut every 10 ops (and after every compaction); resume each."""
        corpus, probes, rng = trace_data
        root = os.path.join(tmp_path, "live")
        cuts = []

        def snapshot(tag):
            copy = os.path.join(tmp_path, f"cut-{tag}")
            shutil.copytree(root, copy)
            cuts.append(
                (
                    copy,
                    _answers(server, probes),
                    server.n_live,
                    server.next_row_id,
                )
            )

        with MutableIndexServer(root, corpus, kind="kdtree") as server:
            live = list(range(40))
            for step in range(1, 501):
                if rng.random() < 0.55 or len(live) <= 4:
                    live.append(server.insert(rng.standard_normal(5)))
                else:
                    victim = live.pop(int(rng.integers(len(live))))
                    server.delete(victim)
                if step % 100 == 0:
                    server.compact()
                    snapshot(f"{step:03d}-post-compact")
                if step % 10 == 0:
                    snapshot(f"{step:03d}")
        assert len(cuts) == 55
        for copy, want, n_live, next_row_id in cuts:
            with MutableIndexServer(copy, kind="kdtree") as resumed:
                assert resumed.n_live == n_live
                assert resumed.next_row_id == next_row_id
                assert _answers(resumed, probes) == want

    def test_sharded_500_op_trace(self, tmp_path, trace_data):
        corpus, probes, rng = trace_data
        root = os.path.join(tmp_path, "live")
        cuts = []
        with MutableShardedServer(
            root, corpus, n_shards=3, kind="bruteforce"
        ) as server:
            live = list(range(40))
            for step in range(1, 501):
                if rng.random() < 0.55 or len(live) <= 4:
                    live.append(server.insert(rng.standard_normal(5)))
                else:
                    victim = live.pop(int(rng.integers(len(live))))
                    server.delete(victim)
                if step % 125 == 0:
                    server.compact_all()
                if step % 25 == 0:
                    copy = os.path.join(tmp_path, f"cut-{step:03d}")
                    shutil.copytree(root, copy)
                    cuts.append(
                        (
                            copy,
                            _answers(server, probes),
                            server.n_live,
                            server.next_row_id,
                        )
                    )
        assert len(cuts) == 20
        for copy, want, n_live, next_row_id in cuts:
            with MutableShardedServer(
                copy, n_shards=3, kind="bruteforce"
            ) as resumed:
                assert resumed.n_live == n_live
                # The recovered global id counter never reuses an
                # acknowledged id, even though the crash may have cut
                # the shards at different per-member op counts.
                assert resumed.next_row_id == next_row_id
                assert _answers(resumed, probes) == want
                batch = resumed.query_batch(probes, 3)
                assert [
                    tuple((n.index, n.distance) for n in r.neighbors)
                    for r in batch.results
                ] == want

    def test_genuine_process_kill(self, tmp_path, trace_data):
        """A child seeds + mutates + ``os._exit``s; resume matches a twin.

        The twin runs the identical op sequence in-process and closes
        cleanly — if copy-as-crash and kill-as-crash disagree, this
        test catches it.
        """
        corpus, probes, _ = trace_data
        crashed = os.path.join(tmp_path, "crashed")
        twin = os.path.join(tmp_path, "twin")
        np.save(os.path.join(tmp_path, "corpus.npy"), corpus)
        child = (
            "import numpy as np, os\n"
            "from repro.serve import MutableIndexServer\n"
            f"corpus = np.load({os.path.join(tmp_path, 'corpus.npy')!r})\n"
            f"server = MutableIndexServer({crashed!r}, corpus, "
            "kind='kdtree')\n"
            "rng = np.random.default_rng(9)\n"
            "for _ in range(20):\n"
            "    server.insert(rng.standard_normal(5))\n"
            "for victim in (3, 17, 44):\n"
            "    server.delete(victim)\n"
            "os._exit(1)  # no close(), no compact(): a real crash\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.path.dirname(__file__), "..", "..", "src"),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        result = subprocess.run(
            [sys.executable, "-c", child], env=env, timeout=60
        )
        assert result.returncode == 1
        with MutableIndexServer(twin, corpus, kind="kdtree") as reference:
            rng = np.random.default_rng(9)
            for _ in range(20):
                reference.insert(rng.standard_normal(5))
            for victim in (3, 17, 44):
                reference.delete(victim)
            want = _answers(reference, probes)
            n_live = reference.n_live
        with MutableIndexServer(crashed, kind="kdtree") as resumed:
            assert resumed.n_live == n_live
            assert _answers(resumed, probes) == want


class TestPublishBoundaryFaults:
    def test_commit_fault_adopts_nothing(self, tmp_path, trace_data):
        """A compaction dying at the commit point changes no answer."""
        corpus, probes, rng = trace_data
        root = os.path.join(tmp_path, "c")
        with MutableIndexServer(root, corpus, kind="kdtree") as server:
            for _ in range(8):
                server.insert(rng.standard_normal(5))
            server.delete(2)
            want = _answers(server, probes)
            real_commit = server.store.commit

            def faulty_commit(info):
                raise RuntimeError("injected crash at the commit point")

            server.store.commit = faulty_commit
            try:
                with pytest.raises(RuntimeError, match="injected"):
                    server.compact()
            finally:
                server.store.commit = real_commit
            # In-memory state was never touched ...
            assert server.generation_id == 0
            assert server.memtable_ops == 9
            assert _answers(server, probes) == want
            # ... the on-disk image still resumes to the same answers
            # (the orphan generation directory is invisible) ...
            copy = os.path.join(tmp_path, "crash-image")
            shutil.copytree(root, copy)
            with MutableIndexServer(copy, kind="kdtree") as resumed:
                assert _answers(resumed, probes) == want
            # ... mutations keep flowing, and the retried compaction
            # succeeds and sweeps the orphan directory.
            server.insert(rng.standard_normal(5))
            info = server.compact()
            assert info.generation_id >= 1
            assert server.memtable_ops == 0
            names = set(os.listdir(root))
            assert {g.directory for g in server.store.generations()} <= {
                os.path.join(root, n) for n in names
            }

    def test_manifest_replace_fault_is_atomic(
        self, tmp_path, trace_data, monkeypatch
    ):
        """Dying inside the manifest rename leaves the old manifest."""
        corpus, probes, rng = trace_data
        root = os.path.join(tmp_path, "m")
        with MutableIndexServer(root, corpus, kind="kdtree") as server:
            for _ in range(5):
                server.insert(rng.standard_normal(5))
            want = _answers(server, probes)

            import repro.search.snapshot as snapshot_module

            real_replace = snapshot_module.os.replace

            def faulty_replace(src, dst):
                if dst.endswith("generations.json"):
                    raise OSError("injected crash inside rename")
                return real_replace(src, dst)

            monkeypatch.setattr(
                snapshot_module.os, "replace", faulty_replace
            )
            with pytest.raises(OSError, match="injected"):
                server.compact()
            monkeypatch.undo()
            assert server.generation_id == 0
            assert _answers(server, probes) == want
            copy = os.path.join(tmp_path, "crash-image")
            shutil.copytree(root, copy)
            with MutableIndexServer(copy, kind="kdtree") as resumed:
                assert _answers(resumed, probes) == want

    def test_rotation_seeds_survivors_before_commit(
        self, tmp_path, trace_data
    ):
        """The new generation's log already holds the surviving state.

        Inspecting the committed WAL directly: rows inserted before the
        cut are compacted into the base (not re-logged); tombstones of
        base rows are carried so a resume masks them.
        """
        corpus, probes, rng = trace_data
        root = os.path.join(tmp_path, "rot")
        with MutableIndexServer(root, corpus, kind="kdtree") as server:
            server.insert(rng.standard_normal(5))
            server.compact()
            server.delete(40)  # now a base row; tombstone must carry
            server.compact()
            # After the second compaction the memtable is empty and the
            # tombstone was satisfied by the rebuild: the fresh log
            # carries nothing.
            replay = read_wal(server.store.active().wal_path)
            assert replay.ops == ()
            want = _answers(server, probes)
        with MutableIndexServer(root, kind="kdtree") as resumed:
            assert _answers(resumed, probes) == want


class TestWalDamage:
    def test_torn_tail_truncates_only_the_tear(self, tmp_path, trace_data):
        corpus, probes, rng = trace_data
        root = os.path.join(tmp_path, "torn")
        with MutableIndexServer(root, corpus, kind="kdtree") as server:
            for _ in range(6):
                server.insert(rng.standard_normal(5))
            want = _answers(server, probes)
            wal_path = server.store.active().wal_path
        with open(wal_path, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00\xde\xad")  # half a frame
        with MutableIndexServer(root, kind="kdtree") as resumed:
            assert resumed.n_live == 46
            assert _answers(resumed, probes) == want
            # The reopened writer truncated the tear: appends land on a
            # well-formed log and the next resume sees all of them.
            resumed.insert(rng.standard_normal(5))
        with MutableIndexServer(root, kind="kdtree") as again:
            assert again.n_live == 47

    def test_mid_stream_corruption_refused(self, tmp_path, trace_data):
        corpus, _, rng = trace_data
        root = os.path.join(tmp_path, "corrupt")
        with MutableIndexServer(root, corpus, kind="kdtree") as server:
            for _ in range(4):
                server.insert(rng.standard_normal(5))
            wal_path = server.store.active().wal_path
        blob = bytearray(open(wal_path, "rb").read())
        blob[20] ^= 0xFF  # inside the first record, history damaged
        with open(wal_path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(GenerationError, match="mid-stream"):
            MutableIndexServer(root, kind="kdtree")

    def test_semantic_corruption_refused(self, tmp_path, trace_data):
        """A well-framed log whose ops contradict the base is corrupt."""
        corpus, _, rng = trace_data
        root = os.path.join(tmp_path, "sem")
        with MutableIndexServer(root, corpus, kind="kdtree") as server:
            server.insert(rng.standard_normal(5))
            wal_path = server.store.active().wal_path
        from repro.serve.wal import WalWriter

        replay = read_wal(wal_path)
        with WalWriter(
            wal_path, truncate_to=replay.valid_bytes
        ) as writer:
            writer.append_delete(9999)  # no such row anywhere
        with pytest.raises(GenerationError, match="unknown row"):
            MutableIndexServer(root, kind="kdtree")

    @pytest.mark.parametrize("policy", ["group", "off"])
    def test_clean_close_is_lossless_under_any_policy(
        self, tmp_path, trace_data, policy
    ):
        corpus, probes, rng = trace_data
        root = os.path.join(tmp_path, policy)
        with MutableIndexServer(
            root, corpus, kind="kdtree", wal_sync=policy
        ) as server:
            for _ in range(9):
                server.insert(rng.standard_normal(5))
            server.delete(0)
            want = _answers(server, probes)
        with MutableIndexServer(root, kind="kdtree") as resumed:
            assert resumed.n_live == 48
            assert _answers(resumed, probes) == want

    def test_pre_wal_generation_resumes_without_log(
        self, tmp_path, trace_data
    ):
        """A store published before WALs existed still resumes."""
        corpus, probes, rng = trace_data
        root = os.path.join(tmp_path, "legacy")
        with MutableIndexServer(root, corpus, kind="kdtree") as server:
            server.insert(rng.standard_normal(5))
            server.compact()
            wal_path = server.store.active().wal_path
        # Re-create the pre-WAL on-disk shape: no log file, no manifest
        # "wal" key.
        os.unlink(wal_path)
        import json

        manifest = os.path.join(root, "generations.json")
        raw = json.load(open(manifest))
        for entry in raw["generations"]:
            entry.pop("wal", None)
        with open(manifest, "w") as handle:
            json.dump(raw, handle)
        with MutableIndexServer(root, kind="kdtree") as resumed:
            assert resumed.n_live == 41
            # The first mutation starts a fresh log at the
            # conventional path, upgrading the store in place.
            resumed.insert(rng.standard_normal(5))
            assert os.path.exists(wal_path)
        with MutableIndexServer(root, kind="kdtree") as again:
            assert again.n_live == 42
