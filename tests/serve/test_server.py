"""IndexServer: bit-identity, caching, validation, stats, lifecycle."""

import threading

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.serve import (
    BatchPolicy,
    FaultPlan,
    FaultyLoader,
    IndexServer,
    InjectedFault,
    ServerClosedError,
)

_FAST = BatchPolicy(max_batch=8, max_wait_ms=1.0)
# Holds submitted requests in the batcher until close() flushes them,
# so coalescing/cancellation tests control exactly when work runs.
_HOLD = BatchPolicy(max_batch=10_000, max_wait_ms=3_600_000.0)


@pytest.fixture(scope="module")
def corpus():
    return np.random.default_rng(11).normal(size=(100, 4))


@pytest.fixture(scope="module")
def index(corpus):
    return BruteForceIndex(corpus)


@pytest.fixture(scope="module")
def snapshot(index, tmp_path_factory):
    path = tmp_path_factory.mktemp("server") / "bruteforce.npz"
    index.save(str(path))
    return str(path)


def assert_result_matches(got, expected):
    assert tuple(got.indices.tolist()) == tuple(expected.indices.tolist())
    assert tuple(got.distances.tolist()) == tuple(expected.distances.tolist())
    assert got.stats == expected.stats


class TestBitIdentity:
    def test_individually_submitted_queries(self, index, snapshot, rng):
        queries = rng.normal(size=(25, 4))
        with IndexServer(snapshot, n_workers=0, policy=_FAST) as server:
            futures = [server.submit(q, k=3) for q in queries]
            for q, future in zip(queries, futures):
                assert_result_matches(
                    future.result(timeout=30), index.query(q, k=3)
                )

    def test_mixed_k_traffic(self, index, snapshot, rng):
        queries = rng.normal(size=(18, 4))
        ks = [1 + (i % 4) for i in range(18)]
        with IndexServer(snapshot, n_workers=0, policy=_FAST) as server:
            futures = [
                server.submit(q, k=k) for q, k in zip(queries, ks)
            ]
            for q, k, future in zip(queries, ks, futures):
                assert_result_matches(
                    future.result(timeout=30), index.query(q, k=k)
                )

    def test_pooled_serving_matches(self, index, snapshot, rng):
        queries = rng.normal(size=(12, 4))
        with IndexServer(snapshot, n_workers=2, policy=_FAST) as server:
            futures = [server.submit(q, k=2) for q in queries]
            for q, future in zip(queries, futures):
                assert_result_matches(
                    future.result(timeout=30), index.query(q, k=2)
                )

    def test_explicit_batch_bypasses_batcher(self, index, snapshot, rng):
        queries = rng.normal(size=(7, 4))
        with IndexServer(snapshot, n_workers=0) as server:
            batch = server.query_batch(queries, k=3)
        expected = index.query_batch(queries, k=3)
        for got, want in zip(batch, expected):
            assert_result_matches(got, want)

    def test_empty_explicit_batch(self, snapshot):
        with IndexServer(snapshot, n_workers=0) as server:
            batch = server.query_batch(np.empty((0, 4)), k=2)
        assert len(batch) == 0

    def test_explicit_batch_honors_deadline(self, index, snapshot, rng):
        """query_batch carries the same deadline contract as query."""
        from repro.serve.errors import DeadlineExceeded

        queries = rng.normal(size=(4, 4))
        with IndexServer(snapshot, n_workers=0) as server:
            # A generous deadline answers normally ...
            batch = server.query_batch(queries, k=2, deadline_ms=60_000)
            expected = index.query_batch(queries, k=2)
            for got, want in zip(batch, expected):
                assert_result_matches(got, want)
            # ... an impossible one raises instead of answering late
            # (in-process compute cannot be preempted, so the check
            # lands on completion) and is counted in the ledger.
            with pytest.raises(DeadlineExceeded):
                server.query_batch(queries, k=2, deadline_ms=1e-6)
            assert server.stats().n_deadline_exceeded >= 1
            # Invalid deadlines are rejected like submit rejects them.
            with pytest.raises(ValueError, match="deadline_ms"):
                server.query_batch(queries, k=2, deadline_ms=0)


class TestCache:
    def test_repeats_hit_and_stay_identical(self, index, snapshot, rng):
        queries = rng.normal(size=(6, 4))
        with IndexServer(
            snapshot, n_workers=0, policy=_FAST, cache_capacity=32
        ) as server:
            first = [server.query(q, k=2) for q in queries]
            second = [server.query(q, k=2) for q in queries]
            report = server.stats()
        assert report.cache_hits == 6
        assert report.cache_misses == 6
        for q, one, two in zip(queries, first, second):
            assert_result_matches(one, index.query(q, k=2))
            assert_result_matches(two, one)

    def test_eviction_counters_surface_in_report(self, snapshot, rng):
        queries = rng.normal(size=(10, 4))
        with IndexServer(
            snapshot, n_workers=0, policy=_FAST, cache_capacity=4
        ) as server:
            for q in queries:
                server.query(q, k=1)
            report = server.stats()
        assert report.cache_misses == 10
        assert report.cache_evictions == 6

    def test_same_query_different_k_misses(self, snapshot, rng):
        query = rng.normal(size=4)
        with IndexServer(
            snapshot, n_workers=0, policy=_FAST, cache_capacity=8
        ) as server:
            server.query(query, k=1)
            server.query(query, k=2)
            report = server.stats()
        assert report.cache_hits == 0
        assert report.cache_misses == 2


class TestCacheStampede:
    def test_identical_misses_coalesce_to_one_batch_row(
        self, index, snapshot, rng
    ):
        # Regression: concurrent identical misses used to each enqueue
        # their own batch row (a cache stampede).  The second submission
        # must follow the first's in-flight future instead.
        query = rng.normal(size=4)
        with IndexServer(
            snapshot, n_workers=0, policy=_HOLD, cache_capacity=8
        ) as server:
            leader = server.submit(query, k=3)
            follower = server.submit(query, k=3)
            assert not leader.done() and not follower.done()
            server.close()  # flushes the single pending batch row
            expected = index.query(query, k=3)
            assert_result_matches(leader.result(timeout=30), expected)
            assert_result_matches(follower.result(timeout=30), expected)
            report = server.stats()
        assert report.n_requests == 2
        assert sum(
            size * count
            for size, count in report.batch_size_histogram.items()
        ) == 1

    def test_two_thread_stampede_flushes_once(self, index, snapshot, rng):
        query = rng.normal(size=4)
        policy = BatchPolicy(max_batch=64, max_wait_ms=40.0)
        results = [None, None]
        barrier = threading.Barrier(2)
        with IndexServer(
            snapshot, n_workers=0, policy=policy, cache_capacity=8
        ) as server:

            def worker(slot):
                barrier.wait()
                results[slot] = server.query(query, k=2)

            threads = [
                threading.Thread(target=worker, args=(n,)) for n in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            report = server.stats()
        # Whatever the interleaving — coalesced onto one in-flight
        # future, or the late thread hitting the cache — exactly one
        # batch row executes and both callers are answered identically.
        assert report.n_requests == 2
        assert sum(
            size * count
            for size, count in report.batch_size_histogram.items()
        ) == 1
        expected = index.query(query, k=2)
        assert_result_matches(results[0], expected)
        assert_result_matches(results[1], expected)

    def test_follower_mirrors_leader_failure(self, snapshot, rng):
        # A failed leader must fail its followers with the same typed
        # error — never hang them, never cache the failure.
        loader = FaultyLoader(FaultPlan(raise_on=(1,)))
        query = rng.normal(size=4)
        with IndexServer(
            snapshot, n_workers=0, policy=_HOLD, cache_capacity=8,
            index_loader=loader,
        ) as server:
            leader = server.submit(query, k=2)
            follower = server.submit(query, k=2)
            server.close()
            with pytest.raises(InjectedFault):
                leader.result(timeout=30)
            with pytest.raises(InjectedFault):
                follower.result(timeout=30)
            report = server.stats()
        assert report.n_failed == 2
        assert report.cache_hits == 0


class TestValidation:
    def test_bad_query_raises_synchronously(self, snapshot):
        with IndexServer(snapshot, n_workers=0) as server:
            with pytest.raises(ValueError):
                server.submit(np.zeros(9), k=1)

    def test_nan_query_raises(self, snapshot):
        with IndexServer(snapshot, n_workers=0) as server:
            with pytest.raises(ValueError, match="finite"):
                server.submit(np.full(4, np.nan), k=1)

    def test_out_of_range_k_raises(self, snapshot):
        with IndexServer(snapshot, n_workers=0) as server:
            with pytest.raises(ValueError):
                server.submit(np.zeros(4), k=0)
            with pytest.raises(ValueError):
                server.submit(np.zeros(4), k=101)

    def test_constructor_rejects_bad_arguments(self, snapshot):
        with pytest.raises(ValueError, match="n_workers"):
            IndexServer(snapshot, n_workers=-1)
        with pytest.raises(ValueError, match="cache_capacity"):
            IndexServer(snapshot, cache_capacity=-1)
        with pytest.raises(ValueError, match="default_deadline_ms"):
            IndexServer(snapshot, default_deadline_ms=0)
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            IndexServer(snapshot, n_workers=1, heartbeat_timeout=-1.0)

    def test_nonpositive_deadline_ms_raises(self, snapshot):
        with IndexServer(snapshot, n_workers=0) as server:
            with pytest.raises(ValueError, match="deadline_ms"):
                server.submit(np.zeros(4), k=1, deadline_ms=-5.0)


class TestFailureAccounting:
    def test_injected_error_is_counted_not_cached_not_fatal(
        self, index, snapshot, rng
    ):
        # The first in-process batch raises; the failure must surface
        # typed in the caller's future, be counted as n_failed, skip the
        # cache put, and leave the server fully serviceable.
        loader = FaultyLoader(FaultPlan(raise_on=(1,)))
        query = rng.normal(size=4)
        with IndexServer(
            snapshot, n_workers=0, policy=_FAST, cache_capacity=8,
            index_loader=loader,
        ) as server:
            future = server.submit(query, k=2)
            with pytest.raises(InjectedFault):
                future.result(timeout=30)
            retried = server.query(query, k=2)
            report = server.stats()
        assert report.n_failed == 1
        assert report.n_requests == 1
        # The failed attempt put nothing in the cache: the retry was a
        # miss, not a hit replaying a poisoned entry.
        assert report.cache_hits == 0
        assert report.cache_misses == 2
        assert_result_matches(retried, index.query(query, k=2))


class TestStats:
    def test_report_accounts_every_request(self, snapshot, rng):
        queries = rng.normal(size=(20, 4))
        with IndexServer(snapshot, n_workers=0, policy=_FAST) as server:
            futures = [server.submit(q, k=2) for q in queries]
            for future in futures:
                future.result(timeout=30)
            report = server.stats()
        assert report.n_requests == 20
        assert sum(
            size * count
            for size, count in report.batch_size_histogram.items()
        ) == 20
        assert max(report.batch_size_histogram) <= _FAST.max_batch
        assert 0.0 <= report.latency_p50_ms <= report.latency_p95_ms
        assert report.latency_p95_ms <= report.latency_p99_ms
        assert report.query_stats.points_scanned == 20 * 100
        assert report.throughput_qps > 0

    def test_cancelled_requests_balance_the_ledger(self, snapshot, rng):
        # Regression: _finish_request used to return early on cancelled
        # futures without counting them, so submissions silently vanished
        # from the report and the ledger stopped balancing.
        queries = rng.normal(size=(6, 4))
        with IndexServer(snapshot, n_workers=0, policy=_HOLD) as server:
            futures = [server.submit(q, k=1) for q in queries]
            assert futures[0].cancel()
            assert futures[3].cancel()
            server.close()  # flushes the survivors
            for n, future in enumerate(futures):
                if n not in (0, 3):
                    future.result(timeout=30)
            report = server.stats()
        assert report.n_cancelled == 2
        assert report.n_requests == 4
        accounted = (
            report.n_requests
            + report.n_failed
            + report.n_shed
            + report.n_deadline_exceeded
            + report.n_cancelled
        )
        assert accounted == len(futures), report

    def test_reset_clears_samples(self, snapshot, rng):
        with IndexServer(snapshot, n_workers=0, policy=_FAST) as server:
            server.query(rng.normal(size=4), k=1)
            server.reset_stats()
            report = server.stats()
        assert report.n_requests == 0
        assert report.n_batches == 0


class TestLifecycle:
    def test_metadata(self, snapshot):
        with IndexServer(snapshot, n_workers=0) as server:
            assert server.kind == "bruteforce"
            assert server.n_points == 100
            assert server.dimensionality == 4
            assert len(server.fingerprint) == 64

    def test_submit_after_close_raises(self, snapshot, rng):
        server = IndexServer(snapshot, n_workers=0)
        server.close()
        # Typed, and still a RuntimeError for pre-hardening callers.
        with pytest.raises(ServerClosedError, match="closed"):
            server.submit(rng.normal(size=4), k=1)
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(rng.normal(size=4), k=1)
        with pytest.raises(ServerClosedError, match="closed"):
            server.query_batch(rng.normal(size=(2, 4)), k=1)
        with pytest.raises(ServerClosedError, match="closed"):
            server.query(rng.normal(size=4), k=1)

    def test_close_is_idempotent(self, snapshot):
        server = IndexServer(snapshot, n_workers=0)
        server.close()
        server.close()
