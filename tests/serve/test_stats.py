"""LatencyReservoir and ServingStats: bounded memory, determinism,
degradation counters."""

import numpy as np
import pytest

from repro.search.results import QueryStats
from repro.serve import LatencyReservoir, ServingStats


class TestLatencyReservoir:
    def test_keeps_everything_below_capacity(self):
        reservoir = LatencyReservoir(capacity=10)
        for value in range(7):
            reservoir.add(float(value))
        assert len(reservoir) == 7
        assert reservoir.n_seen == 7
        assert reservoir.snapshot().tolist() == [float(v) for v in range(7)]

    def test_million_samples_stay_bounded(self):
        # The satellite regression: the pre-hardening accumulator kept
        # every latency for the life of the server.  A million samples
        # must retain exactly `capacity` of them.
        reservoir = LatencyReservoir(capacity=512)
        for value in range(1_000_000):
            reservoir.add(float(value))
        assert len(reservoir) == 512
        assert reservoir.n_seen == 1_000_000
        samples = reservoir.snapshot()
        assert samples.shape == (512,)
        # Algorithm R keeps a uniform sample, so the retained values
        # should span the stream, not just its head or tail.
        assert samples.min() < 250_000
        assert samples.max() > 750_000

    def test_identical_streams_give_identical_samples(self):
        a = LatencyReservoir(capacity=64, seed=3)
        b = LatencyReservoir(capacity=64, seed=3)
        stream = np.random.default_rng(0).normal(size=5_000)
        for value in stream:
            a.add(float(value))
            b.add(float(value))
        assert a.snapshot().tolist() == b.snapshot().tolist()

    def test_reset_reseeds_for_identical_replay(self):
        reservoir = LatencyReservoir(capacity=32, seed=9)
        stream = [float(v) for v in range(1_000)]
        for value in stream:
            reservoir.add(value)
        first = reservoir.snapshot().tolist()
        reservoir.reset()
        assert len(reservoir) == 0
        assert reservoir.n_seen == 0
        for value in stream:
            reservoir.add(value)
        assert reservoir.snapshot().tolist() == first

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            LatencyReservoir(capacity=0)


class TestServingStats:
    def test_reports_are_deterministic_across_instances(self):
        streams = np.random.default_rng(4).uniform(0.001, 0.1, size=20_000)
        reports = []
        for _ in range(2):
            stats = ServingStats(reservoir_capacity=256, reservoir_seed=1)
            for latency in streams:
                stats.record_request(float(latency))
            reports.append(stats.report())
        assert reports[0].latency_p50_ms == reports[1].latency_p50_ms
        assert reports[0].latency_p95_ms == reports[1].latency_p95_ms
        assert reports[0].latency_p99_ms == reports[1].latency_p99_ms

    def test_percentiles_order_and_requests_counted_past_capacity(self):
        stats = ServingStats(reservoir_capacity=128)
        for latency in np.linspace(0.001, 0.2, 10_000):
            stats.record_request(float(latency))
        report = stats.report()
        assert report.n_requests == 10_000
        assert 0.0 < report.latency_p50_ms <= report.latency_p95_ms
        assert report.latency_p95_ms <= report.latency_p99_ms <= 200.0

    def test_degradation_counters(self):
        stats = ServingStats()
        stats.record_request(0.01)
        stats.record_failure()
        stats.record_failure()
        stats.record_shed()
        stats.record_deadline_exceeded()
        report = stats.report(pool_counters=(2, 1, 3))
        assert report.n_requests == 1
        assert report.n_failed == 2
        assert report.n_shed == 1
        assert report.n_deadline_exceeded == 1
        assert (report.n_restarts, report.n_hung_kills, report.n_resubmitted) \
            == (2, 1, 3)

    def test_batch_stats_fold_matches_flat_sum(self):
        stats = ServingStats()
        for i in range(100):
            stats.record_batch(
                4, QueryStats(points_scanned=10 * (i + 1), nodes_visited=i)
            )
        report = stats.report()
        assert report.query_stats.points_scanned == 10 * 5050
        assert report.query_stats.nodes_visited == 4950
        assert report.n_batches == 100
        assert report.mean_batch_size == 4.0

    def test_reset_clears_degradation_counters(self):
        stats = ServingStats()
        stats.record_failure()
        stats.record_shed()
        stats.record_deadline_exceeded()
        stats.reset()
        report = stats.report()
        assert report.n_failed == 0
        assert report.n_shed == 0
        assert report.n_deadline_exceeded == 0
