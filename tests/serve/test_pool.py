"""Worker pool: correctness over IPC, crash restart, fatal snapshots."""

import os
import signal
import time

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.snapshot import SnapshotError, write_snapshot
from repro.serve import (
    DeadlineExceeded,
    FaultPlan,
    FaultyLoader,
    WorkerError,
    WorkerPool,
)


def wait_for(predicate, timeout=10.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


@pytest.fixture(scope="module")
def corpus():
    return np.random.default_rng(7).normal(size=(120, 5))


@pytest.fixture(scope="module")
def snapshot(corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("pool") / "bruteforce.npz"
    BruteForceIndex(corpus).save(str(path))
    return str(path)


def assert_matches_local(corpus, batch, queries, k):
    local = BruteForceIndex(corpus).query_batch(queries, k=k)
    assert len(batch) == len(local)
    for got, expected in zip(batch, local):
        assert tuple(got.indices.tolist()) == tuple(expected.indices.tolist())
        assert tuple(got.distances.tolist()) == tuple(
            expected.distances.tolist()
        )
        assert got.stats == expected.stats


class TestSubmission:
    def test_batch_matches_local_query_batch(self, corpus, snapshot, rng):
        queries = rng.normal(size=(9, 5))
        with WorkerPool(snapshot, 1) as pool:
            batch = pool.submit(queries, 3).result(timeout=30)
        assert_matches_local(corpus, batch, queries, 3)

    def test_many_batches_across_two_workers(self, corpus, snapshot, rng):
        batches = [rng.normal(size=(4, 5)) for _ in range(10)]
        with WorkerPool(snapshot, 2) as pool:
            futures = [pool.submit(b, 2) for b in batches]
            results = [f.result(timeout=30) for f in futures]
        for queries, batch in zip(batches, results):
            assert_matches_local(corpus, batch, queries, 2)

    def test_worker_side_validation_error_surfaces(self, snapshot, rng):
        with WorkerPool(snapshot, 1) as pool:
            future = pool.submit(rng.normal(size=(3, 9)), 2)  # wrong width
            with pytest.raises(WorkerError, match="ValueError"):
                future.result(timeout=30)

    def test_pool_is_reusable_after_worker_error(self, corpus, snapshot, rng):
        with WorkerPool(snapshot, 1) as pool:
            bad = pool.submit(rng.normal(size=(2, 9)), 1)
            with pytest.raises(WorkerError):
                bad.result(timeout=30)
            queries = rng.normal(size=(3, 5))
            good = pool.submit(queries, 1).result(timeout=30)
        assert_matches_local(corpus, good, queries, 1)


class TestCrashRecovery:
    def test_killed_worker_is_restarted(self, corpus, snapshot, rng):
        with WorkerPool(snapshot, 1) as pool:
            queries = rng.normal(size=(3, 5))
            pool.submit(queries, 2).result(timeout=30)
            (pid,) = pool.worker_pids()
            os.kill(pid, signal.SIGKILL)
            assert wait_for(lambda: pool.n_restarts >= 1)
            assert wait_for(lambda: pool.worker_pids() != [pid])
            batch = pool.submit(queries, 2).result(timeout=30)
        assert_matches_local(corpus, batch, queries, 2)

    def test_no_restart_marks_slot_fatal(self, snapshot, rng):
        with WorkerPool(snapshot, 1, restart_crashed=False) as pool:
            (pid,) = pool.worker_pids()
            os.kill(pid, signal.SIGKILL)

            def all_dead():
                try:
                    pool.submit(rng.normal(size=(1, 5)), 1)
                except WorkerError:
                    return True
                return False

            assert wait_for(all_dead)
            assert pool.n_restarts == 0


class TestHungWorkerRecovery:
    def test_hung_worker_is_killed_and_batch_reanswered(
        self, corpus, snapshot, tmp_path, rng
    ):
        # The first worker hangs on its first batch; the heartbeat must
        # kill it, start a replacement (clean, because the marker was
        # claimed), and resubmit the orphaned batch — whose answer must
        # match a local query_batch exactly.
        loader = FaultyLoader(
            FaultPlan(hang_on=(1,)), marker_path=str(tmp_path / "claim")
        )
        queries = rng.normal(size=(5, 5))
        with WorkerPool(
            snapshot, 1, heartbeat_timeout=0.25, index_loader=loader
        ) as pool:
            batch = pool.submit(queries, 2).result(timeout=30)
            assert pool.n_hung_kills >= 1
            assert pool.n_restarts >= 1
            assert pool.n_resubmitted >= 1
        assert_matches_local(corpus, batch, queries, 2)

    def test_hung_worker_killed_after_its_deadlines_expired(
        self, corpus, snapshot, tmp_path, rng
    ):
        # Regression: deadline expiry fails the future and drops the
        # batch from the books, but the worker is still physically
        # stuck on it.  Hang evidence must survive the expiry so the
        # heartbeat still kills the zombie — otherwise it would sit in
        # the pool absorbing (and deadline-failing) fresh traffic
        # forever, exactly when deadlines are shorter than the
        # heartbeat.
        loader = FaultyLoader(
            FaultPlan(hang_on=(1,)), marker_path=str(tmp_path / "claim")
        )
        with WorkerPool(
            snapshot, 1, heartbeat_timeout=0.3, index_loader=loader
        ) as pool:
            future = pool.submit(
                rng.normal(size=(2, 5)), 1,
                deadline=time.perf_counter() + 0.05,
            )
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30)
            assert wait_for(lambda: pool.n_hung_kills >= 1)
            assert wait_for(lambda: pool.n_restarts >= 1)
            # The replacement (clean — marker claimed) serves normally.
            queries = rng.normal(size=(3, 5))
            batch = pool.submit(queries, 2).result(timeout=30)
        assert_matches_local(corpus, batch, queries, 2)

    def test_backlogged_healthy_worker_is_not_killed(
        self, corpus, snapshot, rng
    ):
        # Regression: one worker draining a queue of slow-but-answering
        # batches runs far longer than the heartbeat end to end.  Hang
        # detection keys on worker *silence*, not on how long ago a
        # batch was submitted, so the steady worker must never be
        # killed and every answer must arrive.
        loader = FaultyLoader(FaultPlan(delay_all=0.25))
        batches = [rng.normal(size=(2, 5)) for _ in range(6)]
        with WorkerPool(
            snapshot, 1, heartbeat_timeout=1.0, index_loader=loader
        ) as pool:
            futures = [pool.submit(b, 2) for b in batches]
            results = [f.result(timeout=30) for f in futures]
            assert pool.n_hung_kills == 0
            assert pool.n_restarts == 0
        for queries, batch in zip(batches, results):
            assert_matches_local(corpus, batch, queries, 2)

    def test_bounded_resubmission_fails_poison_batch(self, snapshot, rng):
        # No marker: EVERY worker (original and replacements) hangs on
        # its first batch, so the batch is a poison pill.  The retry
        # budget must stop the kill/restart cycle after max_resubmits
        # and fail the future loudly.
        loader = FaultyLoader(FaultPlan(hang_on=(1,)))
        with WorkerPool(
            snapshot, 1, heartbeat_timeout=0.15, max_resubmits=1,
            index_loader=loader,
        ) as pool:
            future = pool.submit(rng.normal(size=(2, 5)), 1)
            with pytest.raises(WorkerError, match="abandoned"):
                future.result(timeout=30)
            # original worker + the one replacement both got killed
            assert pool.n_hung_kills >= 2
            assert pool.n_resubmitted == 1


class TestBatchDeadlines:
    def test_expired_batch_fails_and_pool_survives(
        self, corpus, snapshot, rng
    ):
        loader = FaultyLoader(FaultPlan(delay_all=0.5))
        with WorkerPool(snapshot, 1, index_loader=loader) as pool:
            future = pool.submit(
                rng.normal(size=(2, 5)), 1,
                deadline=time.perf_counter() + 0.05,
            )
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30)
            # The worker's late answer is discarded, not delivered; the
            # pool keeps serving deadline-less traffic afterwards.
            queries = rng.normal(size=(3, 5))
            batch = pool.submit(queries, 1).result(timeout=30)
        assert_matches_local(corpus, batch, queries, 1)


class TestInjectedErrors:
    def test_worker_side_injected_fault_surfaces_typed(self, snapshot, rng):
        loader = FaultyLoader(FaultPlan(raise_on=(1,)))
        with WorkerPool(snapshot, 1, index_loader=loader) as pool:
            future = pool.submit(rng.normal(size=(2, 5)), 1)
            with pytest.raises(WorkerError, match="InjectedFault"):
                future.result(timeout=30)


class TestSnapshotValidation:
    def test_bad_path_fails_in_the_caller(self, tmp_path):
        with pytest.raises(SnapshotError):
            WorkerPool(str(tmp_path / "missing.npz"), 1)

    def test_unloadable_snapshot_marks_workers_fatal(self, tmp_path, rng):
        # Passes the up-front kind check but is missing the arrays the
        # loader needs, so the worker reports fatal instead of looping
        # through restarts.
        path = str(tmp_path / "hollow.npz")
        write_snapshot(
            path, "bruteforce", {"decoy": rng.normal(size=(3, 2))}
        )
        with WorkerPool(path, 1) as pool:
            def fatal():
                try:
                    pool.submit(rng.normal(size=(1, 2)), 1)
                except WorkerError:
                    return True
                return False

            assert wait_for(fatal)
            assert pool.n_restarts == 0


class TestLifecycle:
    def test_rejects_nonpositive_workers(self, snapshot):
        with pytest.raises(ValueError, match="n_workers"):
            WorkerPool(snapshot, 0)

    def test_submit_after_close_raises(self, snapshot, rng):
        pool = WorkerPool(snapshot, 1)
        pool.close()
        with pytest.raises(WorkerError, match="closed"):
            pool.submit(rng.normal(size=(1, 5)), 1)

    def test_close_is_idempotent(self, snapshot):
        pool = WorkerPool(snapshot, 1)
        pool.close()
        pool.close()

    def test_drain_waits_for_inflight_work(self, snapshot, rng):
        with WorkerPool(snapshot, 2) as pool:
            futures = [
                pool.submit(rng.normal(size=(5, 5)), 2) for _ in range(6)
            ]
            assert pool.drain(timeout=30.0)
            assert all(f.done() for f in futures)
