"""LRU result cache: eviction order, counters, key derivation."""

import zipfile

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.search.snapshot import load_index
from repro.serve import ResultCache, result_cache_key, snapshot_fingerprint


class TestResultCache:
    def test_roundtrip_and_counters(self):
        cache = ResultCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        counters = cache.counters
        assert (counters.hits, counters.misses) == (1, 1)
        assert counters.evictions == 0
        assert counters.size == 1
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh: "b" is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.counters.evictions == 1

    def test_refreshing_existing_key_does_not_evict(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update in place, still 2 entries
        assert cache.counters.evictions == 0
        assert cache.get("a") == 10
        assert cache.get("b") == 2

    def test_capacity_bound_holds(self):
        cache = ResultCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.counters.evictions == 7

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(0)


class TestCacheKeys:
    def test_distinguishes_query_k_and_fingerprint(self):
        q1 = np.array([1.0, 2.0])
        q2 = np.array([1.0, 3.0])
        base = result_cache_key(q1, 3, "fp")
        assert result_cache_key(q1, 3, "fp") == base
        assert result_cache_key(q2, 3, "fp") != base
        assert result_cache_key(q1, 4, "fp") != base
        assert result_cache_key(q1, 3, "other") != base

    def test_canonical_float64_forms_share_an_entry(self):
        a = np.array([1.0, 2.0], dtype=np.float64)
        b = np.asarray([1, 2], dtype=np.float64)
        assert result_cache_key(a, 2, "fp") == result_cache_key(b, 2, "fp")


class TestSnapshotFingerprint:
    def test_stable_and_content_sensitive(self, tmp_path, rng):
        points = rng.normal(size=(30, 4))
        first = tmp_path / "a.npz"
        second = tmp_path / "b.npz"
        BruteForceIndex(points).save(str(first))
        BruteForceIndex(points * 2.0).save(str(second))
        assert snapshot_fingerprint(str(first)) == snapshot_fingerprint(
            str(first)
        )
        assert snapshot_fingerprint(str(first)) != snapshot_fingerprint(
            str(second)
        )

    def test_rejects_non_archive(self, tmp_path):
        path = tmp_path / "not-a-zip.npz"
        path.write_text("plain text")
        with pytest.raises(ValueError, match="cannot fingerprint"):
            snapshot_fingerprint(str(path))

    def test_never_reads_member_payloads(self, tmp_path, rng, monkeypatch):
        # The fingerprint comes from the zip central directory; opening
        # any member would stream the (typically dominant) corpus bytes
        # a memory-mapped server deliberately leaves on disk.
        path = tmp_path / "index.npz"
        BruteForceIndex(rng.normal(size=(40, 4))).save(str(path))
        opened = []
        original = zipfile.ZipFile.open

        def recording_open(self, name, *args, **kwargs):
            opened.append(name if isinstance(name, str) else name.filename)
            return original(self, name, *args, **kwargs)

        monkeypatch.setattr(zipfile.ZipFile, "open", recording_open)
        fingerprint = snapshot_fingerprint(str(path))
        assert len(fingerprint) == 64
        assert opened == []

    def test_mmap_startup_never_reads_corpus_member(
        self, tmp_path, rng, monkeypatch
    ):
        # Regression: load_index(..., mmap_points=True) used to
        # materialize the points member anyway (NpzFile loads a member
        # on access) before replacing it with the memmap — a full read
        # of the corpus that defeated the point of mmap.
        path = tmp_path / "index.npz"
        BruteForceIndex(rng.normal(size=(40, 4))).save(str(path))
        opened = []
        original = zipfile.ZipFile.open

        def recording_open(self, name, *args, **kwargs):
            opened.append(name if isinstance(name, str) else name.filename)
            return original(self, name, *args, **kwargs)

        monkeypatch.setattr(zipfile.ZipFile, "open", recording_open)
        index = load_index(str(path), mmap_points=True)
        assert "points.npy" not in opened
        # The mapped corpus still answers: the pages fault in on demand.
        assert index.query(np.zeros(4), k=1).indices.size == 1
