"""Micro-batcher: size/deadline flushing, per-k grouping, error routing."""

import threading
import time

import numpy as np
import pytest

from repro.serve import BatchPolicy, MicroBatcher


class Recorder:
    """A flush target that resolves futures with (row, k) echoes."""

    def __init__(self):
        self.batches = []
        self.lock = threading.Lock()

    def __call__(self, queries, k, futures):
        with self.lock:
            self.batches.append((queries.copy(), k))
        for row, future in zip(queries, futures):
            future.set_result((row.copy(), k))


def wait_for(predicate, timeout=5.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch == 64
        assert policy.max_wait_ms == 2.0

    def test_rejects_nonpositive_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchPolicy(max_batch=0)

    def test_rejects_negative_wait(self):
        with pytest.raises(ValueError, match="max_wait_ms"):
            BatchPolicy(max_wait_ms=-1.0)


class TestFlushTriggers:
    def test_full_batch_flushes_immediately(self):
        recorder = Recorder()
        # A wait long enough that only the size trigger can explain the
        # flush arriving quickly.
        policy = BatchPolicy(max_batch=4, max_wait_ms=60_000.0)
        with MicroBatcher(recorder, policy) as batcher:
            futures = [
                batcher.submit(np.full(3, float(i)), 2) for i in range(4)
            ]
            assert wait_for(lambda: all(f.done() for f in futures))
        assert len(recorder.batches) == 1
        queries, k = recorder.batches[0]
        assert queries.shape == (4, 3)
        assert k == 2

    def test_deadline_flushes_partial_batch(self):
        recorder = Recorder()
        policy = BatchPolicy(max_batch=1_000, max_wait_ms=5.0)
        with MicroBatcher(recorder, policy) as batcher:
            future = batcher.submit(np.zeros(2), 1)
            assert wait_for(future.done)
        assert len(recorder.batches) == 1
        assert recorder.batches[0][0].shape == (1, 2)

    def test_rows_keep_arrival_order(self):
        recorder = Recorder()
        policy = BatchPolicy(max_batch=8, max_wait_ms=60_000.0)
        with MicroBatcher(recorder, policy) as batcher:
            futures = [
                batcher.submit(np.full(2, float(i)), 3) for i in range(8)
            ]
            assert wait_for(lambda: all(f.done() for f in futures))
        queries, _ = recorder.batches[0]
        assert queries[:, 0].tolist() == [float(i) for i in range(8)]
        for i, future in enumerate(futures):
            row, _ = future.result()
            assert row[0] == float(i)

    def test_different_k_never_share_a_batch(self):
        recorder = Recorder()
        policy = BatchPolicy(max_batch=64, max_wait_ms=5.0)
        with MicroBatcher(recorder, policy) as batcher:
            futures = [
                batcher.submit(np.zeros(2), 1 + (i % 3)) for i in range(9)
            ]
            assert wait_for(lambda: all(f.done() for f in futures))
        assert {k for _, k in recorder.batches} == {1, 2, 3}
        for queries, _ in recorder.batches:
            assert queries.shape[0] == 3

    def test_oversized_group_splits_at_max_batch(self):
        gate = threading.Event()
        recorder = Recorder()

        def slow_flush(queries, k, futures):
            gate.wait(5.0)  # let submissions pile up past max_batch
            recorder(queries, k, futures)

        policy = BatchPolicy(max_batch=4, max_wait_ms=1.0)
        with MicroBatcher(slow_flush, policy) as batcher:
            futures = [batcher.submit(np.zeros(1), 1) for _ in range(11)]
            gate.set()
            assert wait_for(lambda: all(f.done() for f in futures))
        sizes = sorted(q.shape[0] for q, _ in recorder.batches)
        assert sum(sizes) == 11
        assert max(sizes) <= 4


class TestLifecycleAndErrors:
    def test_close_flushes_pending(self):
        recorder = Recorder()
        policy = BatchPolicy(max_batch=1_000, max_wait_ms=60_000.0)
        batcher = MicroBatcher(recorder, policy)
        futures = [batcher.submit(np.zeros(2), 1) for _ in range(3)]
        batcher.close()
        assert all(f.done() for f in futures)
        assert sum(q.shape[0] for q, _ in recorder.batches) == 3

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(Recorder())
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(np.zeros(2), 1)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(Recorder())
        batcher.close()
        batcher.close()

    def test_flush_exception_routes_to_futures(self):
        def broken(queries, k, futures):
            raise RuntimeError("flush exploded")

        policy = BatchPolicy(max_batch=2, max_wait_ms=5.0)
        with MicroBatcher(broken, policy) as batcher:
            future = batcher.submit(np.zeros(2), 1)
            assert wait_for(future.done)
        with pytest.raises(RuntimeError, match="flush exploded"):
            future.result()
