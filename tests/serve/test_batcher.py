"""Micro-batcher: size/deadline flushing, per-k grouping, error routing,
request deadlines, and bounded admission with load shedding."""

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    DeadlineExceeded,
    MicroBatcher,
    ServerClosedError,
    ServerOverloaded,
)


class Recorder:
    """A flush target that resolves futures with (row, k) echoes."""

    def __init__(self):
        self.batches = []
        self.lock = threading.Lock()

    def __call__(self, queries, k, futures, deadlines):
        with self.lock:
            self.batches.append((queries.copy(), k))
        for row, future in zip(queries, futures):
            future.set_result((row.copy(), k))


def wait_for(predicate, timeout=5.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch == 64
        assert policy.max_wait_ms == 2.0
        assert policy.max_pending is None
        assert policy.shed_policy == "reject-new"

    def test_rejects_nonpositive_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchPolicy(max_batch=0)

    def test_rejects_negative_wait(self):
        with pytest.raises(ValueError, match="max_wait_ms"):
            BatchPolicy(max_wait_ms=-1.0)

    def test_rejects_nonpositive_max_pending(self):
        with pytest.raises(ValueError, match="max_pending"):
            BatchPolicy(max_pending=0)

    def test_rejects_unknown_shed_policy(self):
        with pytest.raises(ValueError, match="shed_policy"):
            BatchPolicy(shed_policy="drop-newest")


class TestFlushTriggers:
    def test_full_batch_flushes_immediately(self):
        recorder = Recorder()
        # A wait long enough that only the size trigger can explain the
        # flush arriving quickly.
        policy = BatchPolicy(max_batch=4, max_wait_ms=60_000.0)
        with MicroBatcher(recorder, policy) as batcher:
            futures = [
                batcher.submit(np.full(3, float(i)), 2) for i in range(4)
            ]
            assert wait_for(lambda: all(f.done() for f in futures))
        assert len(recorder.batches) == 1
        queries, k = recorder.batches[0]
        assert queries.shape == (4, 3)
        assert k == 2

    def test_deadline_flushes_partial_batch(self):
        recorder = Recorder()
        policy = BatchPolicy(max_batch=1_000, max_wait_ms=5.0)
        with MicroBatcher(recorder, policy) as batcher:
            future = batcher.submit(np.zeros(2), 1)
            assert wait_for(future.done)
        assert len(recorder.batches) == 1
        assert recorder.batches[0][0].shape == (1, 2)

    def test_rows_keep_arrival_order(self):
        recorder = Recorder()
        policy = BatchPolicy(max_batch=8, max_wait_ms=60_000.0)
        with MicroBatcher(recorder, policy) as batcher:
            futures = [
                batcher.submit(np.full(2, float(i)), 3) for i in range(8)
            ]
            assert wait_for(lambda: all(f.done() for f in futures))
        queries, _ = recorder.batches[0]
        assert queries[:, 0].tolist() == [float(i) for i in range(8)]
        for i, future in enumerate(futures):
            row, _ = future.result()
            assert row[0] == float(i)

    def test_different_k_never_share_a_batch(self):
        recorder = Recorder()
        policy = BatchPolicy(max_batch=64, max_wait_ms=5.0)
        with MicroBatcher(recorder, policy) as batcher:
            futures = [
                batcher.submit(np.zeros(2), 1 + (i % 3)) for i in range(9)
            ]
            assert wait_for(lambda: all(f.done() for f in futures))
        assert {k for _, k in recorder.batches} == {1, 2, 3}
        for queries, _ in recorder.batches:
            assert queries.shape[0] == 3

    def test_oversized_group_splits_at_max_batch(self):
        gate = threading.Event()
        recorder = Recorder()

        def slow_flush(queries, k, futures, deadlines):
            gate.wait(5.0)  # let submissions pile up past max_batch
            recorder(queries, k, futures, deadlines)

        policy = BatchPolicy(max_batch=4, max_wait_ms=1.0)
        with MicroBatcher(slow_flush, policy) as batcher:
            futures = [batcher.submit(np.zeros(1), 1) for _ in range(11)]
            gate.set()
            assert wait_for(lambda: all(f.done() for f in futures))
        sizes = sorted(q.shape[0] for q, _ in recorder.batches)
        assert sum(sizes) == 11
        assert max(sizes) <= 4


class TestRequestDeadlines:
    def test_expired_request_fails_with_deadline_exceeded(self):
        recorder = Recorder()
        # The flush deadline is an hour away: only per-request deadline
        # enforcement can resolve the future quickly.
        policy = BatchPolicy(max_batch=1_000, max_wait_ms=3_600_000.0)
        with MicroBatcher(recorder, policy) as batcher:
            future = batcher.submit(
                np.zeros(2), 1, deadline=time.perf_counter() + 0.02
            )
            assert wait_for(future.done, timeout=5.0)
            with pytest.raises(DeadlineExceeded):
                future.result()
        assert recorder.batches == []

    def test_unexpired_requests_survive_a_neighbors_expiry(self):
        recorder = Recorder()
        policy = BatchPolicy(max_batch=1_000, max_wait_ms=150.0)
        with MicroBatcher(recorder, policy) as batcher:
            doomed = batcher.submit(
                np.zeros(2), 1, deadline=time.perf_counter() + 0.02
            )
            safe = batcher.submit(np.ones(2), 1)
            assert wait_for(lambda: doomed.done() and safe.done())
        with pytest.raises(DeadlineExceeded):
            doomed.result()
        row, _ = safe.result()
        assert row.tolist() == [1.0, 1.0]
        # The expired row never reached the flush target.
        assert [q.shape[0] for q, _ in recorder.batches] == [1]

    def test_rearmed_split_remainder_still_honors_request_deadlines(self):
        # Covers the oversized-group re-arm: the survivors get a fresh
        # *flush* deadline, but their own request deadlines keep
        # counting and must still fail them with DeadlineExceeded.
        gate = threading.Event()
        recorder = Recorder()

        def slow_flush(queries, k, futures, deadlines):
            gate.wait(5.0)
            recorder(queries, k, futures, deadlines)

        policy = BatchPolicy(max_batch=4, max_wait_ms=1.0)
        with MicroBatcher(slow_flush, policy) as batcher:
            head = [batcher.submit(np.zeros(1), 1) for _ in range(4)]
            tail = [
                batcher.submit(
                    np.ones(1), 1, deadline=time.perf_counter() + 0.05
                )
                for _ in range(3)
            ]
            time.sleep(0.15)  # flusher is stuck in gate; tail expires
            gate.set()
            assert wait_for(
                lambda: all(f.done() for f in head + tail)
            )
        for future in head:
            assert future.exception() is None
        for future in tail:
            with pytest.raises(DeadlineExceeded):
                future.result()
        # Only the head rows were ever flushed.
        assert sum(q.shape[0] for q, _ in recorder.batches) == 4


class TestAdmissionControl:
    def test_reject_new_raises_server_overloaded(self):
        gate = threading.Event()

        def blocked_flush(queries, k, futures, deadlines):
            gate.wait(5.0)
            for future in futures:
                future.set_result(None)

        policy = BatchPolicy(
            max_batch=2, max_wait_ms=1.0, max_pending=3,
            shed_policy="reject-new",
        )
        with MicroBatcher(blocked_flush, policy) as batcher:
            admitted = [batcher.submit(np.zeros(1), 1) for _ in range(2)]
            # The flusher detaches the first full batch and blocks; now
            # fill the queue back up to the bound and overflow it.
            assert wait_for(lambda: batcher.n_pending == 0)
            overflow_at = policy.max_pending
            admitted += [
                batcher.submit(np.zeros(1), 1) for _ in range(overflow_at)
            ]
            with pytest.raises(ServerOverloaded):
                batcher.submit(np.zeros(1), 1)
            gate.set()
            assert wait_for(lambda: all(f.done() for f in admitted))
        assert all(f.exception() is None for f in admitted)

    def test_drop_oldest_sheds_the_oldest_queued_request(self):
        gate = threading.Event()

        def blocked_flush(queries, k, futures, deadlines):
            gate.wait(5.0)
            for row, future in zip(queries, futures):
                future.set_result(float(row[0]))

        policy = BatchPolicy(
            max_batch=100, max_wait_ms=3_600_000.0, max_pending=3,
            shed_policy="drop-oldest",
        )
        with MicroBatcher(blocked_flush, policy) as batcher:
            first = [
                batcher.submit(np.full(1, float(i)), 1) for i in range(3)
            ]
            newcomer = batcher.submit(np.full(1, 99.0), 1)
            # The oldest queued request was sacrificed for the newcomer.
            assert wait_for(first[0].done)
            with pytest.raises(ServerOverloaded):
                first[0].result()
            assert not newcomer.done()
            gate.set()
        assert first[1].result() == 1.0
        assert first[2].result() == 2.0
        assert newcomer.result() == 99.0

    def test_unbounded_policy_never_sheds(self):
        recorder = Recorder()
        policy = BatchPolicy(max_batch=4, max_wait_ms=1.0)
        with MicroBatcher(recorder, policy) as batcher:
            futures = [batcher.submit(np.zeros(1), 1) for _ in range(200)]
            assert wait_for(lambda: all(f.done() for f in futures))
        assert all(f.exception() is None for f in futures)


class TestQueueMaintenanceSeams:
    """The three queue editors — ``_drop_oldest_locked``,
    ``_collect_expired_locked``, ``_pop_ready`` — all mutate the same
    per-k groups and the shared pending counter.  These tests drive the
    seams between them: a split re-arm followed by a shed, expiry inside
    an oversized group, and a shed racing an uncollected expiry."""

    def test_drop_oldest_after_split_sheds_oldest_survivor(self):
        # After _pop_ready splits an oversized group, the rows already
        # detached for flushing are no longer sheddable: drop-oldest
        # must sacrifice the oldest *surviving* request.
        sem = threading.Semaphore(0)
        recorder = Recorder()

        def gated(queries, k, futures, deadlines):
            sem.acquire()
            recorder(queries, k, futures, deadlines)

        policy = BatchPolicy(
            max_batch=2, max_wait_ms=0.0, max_pending=6,
            shed_policy="drop-oldest",
        )
        with MicroBatcher(gated, policy) as batcher:
            futures = [batcher.submit(np.full(1, 0.0), 1)]
            # The flusher detaches [r0] and blocks inside the flush.
            assert wait_for(lambda: batcher.n_pending == 0)
            futures += [
                batcher.submit(np.full(1, float(i)), 1) for i in range(1, 7)
            ]
            sem.release()  # r0 completes; the flusher splits off [r1, r2]
            assert wait_for(lambda: batcher.n_pending == 4)
            futures += [
                batcher.submit(np.full(1, float(i)), 1) for i in (7, 8)
            ]
            victim_candidate = futures[3]  # r3: oldest still queued
            futures.append(batcher.submit(np.full(1, 9.0), 1))
            assert victim_candidate.done()
            with pytest.raises(ServerOverloaded):
                victim_candidate.result()
            sem.release(10)
            assert wait_for(lambda: all(f.done() for f in futures))
            assert batcher.n_pending == 0
        for i, future in enumerate(futures):
            if i != 3:
                assert future.exception() is None, i
        flushed = [v for q, _ in recorder.batches for v in q[:, 0].tolist()]
        assert flushed == [0.0, 1.0, 2.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]

    def test_expired_rows_inside_oversized_group_never_flush(self):
        # Deadlines that pass while the flusher is busy elsewhere must be
        # failed by _collect_expired_locked before _pop_ready sees the
        # group; the survivors flush together, in arrival order.
        gate = threading.Event()
        recorder = Recorder()

        def gated(queries, k, futures, deadlines):
            gate.wait(5.0)
            recorder(queries, k, futures, deadlines)

        policy = BatchPolicy(max_batch=3, max_wait_ms=60_000.0)
        with MicroBatcher(gated, policy) as batcher:
            decoys = [batcher.submit(np.zeros(1), 9) for _ in range(3)]
            assert wait_for(lambda: batcher.n_pending == 0)
            doom = time.perf_counter() + 0.03
            mixed = [
                batcher.submit(
                    np.full(1, float(i)), 1,
                    deadline=doom if i in (1, 3) else None,
                )
                for i in range(5)
            ]
            time.sleep(0.08)  # both deadlines pass, flusher still stuck
            gate.set()
            assert wait_for(lambda: all(f.done() for f in decoys + mixed))
            assert batcher.n_pending == 0
        for i in (1, 3):
            with pytest.raises(DeadlineExceeded):
                mixed[i].result()
        flushed = [q for q, k in recorder.batches if k == 1]
        assert len(flushed) == 1
        assert flushed[0][:, 0].tolist() == [0.0, 2.0, 4.0]

    def test_drop_oldest_of_expired_but_uncollected_request(self):
        # The oldest queued request may already be past its deadline yet
        # not collected (the flusher is busy).  Shedding it must account
        # it exactly once — the first failure wins, the counter stays
        # consistent, and the row never reaches a flush.
        gate = threading.Event()
        recorder = Recorder()

        def gated(queries, k, futures, deadlines):
            gate.wait(5.0)
            recorder(queries, k, futures, deadlines)

        policy = BatchPolicy(
            max_batch=64, max_wait_ms=0.0, max_pending=2,
            shed_policy="drop-oldest",
        )
        with MicroBatcher(gated, policy) as batcher:
            decoy = batcher.submit(np.zeros(1), 9)
            assert wait_for(lambda: batcher.n_pending == 0)
            stale = batcher.submit(
                np.zeros(1), 1, deadline=time.perf_counter() + 0.02
            )
            live = batcher.submit(np.ones(1), 1)
            time.sleep(0.08)  # stale expires while the flusher is stuck
            newcomer = batcher.submit(np.full(1, 2.0), 1)
            assert stale.done()
            with pytest.raises(ServerOverloaded):
                stale.result()
            gate.set()
            assert wait_for(
                lambda: live.done() and newcomer.done() and decoy.done()
            )
            assert batcher.n_pending == 0
        assert live.exception() is None
        assert newcomer.exception() is None
        flushed = [q for q, k in recorder.batches if k == 1]
        assert sum(q.shape[0] for q in flushed) == 2


class TestLifecycleAndErrors:
    def test_close_flushes_pending(self):
        recorder = Recorder()
        policy = BatchPolicy(max_batch=1_000, max_wait_ms=60_000.0)
        batcher = MicroBatcher(recorder, policy)
        futures = [batcher.submit(np.zeros(2), 1) for _ in range(3)]
        batcher.close()
        assert all(f.done() for f in futures)
        assert sum(q.shape[0] for q, _ in recorder.batches) == 3

    def test_submit_after_close_raises_typed_error(self):
        batcher = MicroBatcher(Recorder())
        batcher.close()
        with pytest.raises(ServerClosedError, match="closed"):
            batcher.submit(np.zeros(2), 1)
        # The typed error still honors the historical contract.
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(np.zeros(2), 1)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(Recorder())
        batcher.close()
        batcher.close()

    def test_flush_exception_routes_to_futures(self):
        def broken(queries, k, futures, deadlines):
            raise RuntimeError("flush exploded")

        policy = BatchPolicy(max_batch=2, max_wait_ms=5.0)
        with MicroBatcher(broken, policy) as batcher:
            future = batcher.submit(np.zeros(2), 1)
            assert wait_for(future.done)
        with pytest.raises(RuntimeError, match="flush exploded"):
            future.result()
