"""End-to-end fault matrix for the hardened serving stack.

The contract under test: **every submitted future resolves** — with a
result or a typed :class:`ServingError` — under hangs, crashes,
overload, and deadline expiry; and every answer that *is* delivered is
bit-identical to sequential ``index.query``.  Degradation sheds or
fails loudly; it never answers approximately.
"""

import time

import numpy as np
import pytest

from repro.search.bruteforce import BruteForceIndex
from repro.serve import (
    BatchPolicy,
    DeadlineExceeded,
    FaultPlan,
    FaultyLoader,
    IndexServer,
    ServerOverloaded,
    ServingError,
)

_FAST = BatchPolicy(max_batch=4, max_wait_ms=1.0)


@pytest.fixture(scope="module")
def corpus():
    return np.random.default_rng(23).normal(size=(90, 4))


@pytest.fixture(scope="module")
def index(corpus):
    return BruteForceIndex(corpus)


@pytest.fixture(scope="module")
def snapshot(index, tmp_path_factory):
    path = tmp_path_factory.mktemp("robustness") / "bruteforce.npz"
    index.save(str(path))
    return str(path)


def collect(futures, timeout=60.0):
    """Resolve every future into (results, errors).

    An unresolved future raises ``TimeoutError`` here, failing the test
    — that is the point: no future may be left hanging.  Typed serving
    errors become ``None`` placeholders and are returned for inspection.
    """
    results, errors = [], []
    for future in futures:
        try:
            results.append(future.result(timeout=timeout))
        except ServingError as error:
            results.append(None)
            errors.append(error)
    return results, errors


def assert_delivered_match(index, queries, ks, results):
    for query, k, got in zip(queries, ks, results):
        if got is None:
            continue
        expected = index.query(query, k=k)
        assert tuple(got.indices.tolist()) == tuple(
            expected.indices.tolist()
        )
        assert tuple(got.distances.tolist()) == tuple(
            expected.distances.tolist()
        )
        assert got.stats == expected.stats


class TestHungWorker:
    def test_recovery_is_bit_identical(self, index, snapshot, tmp_path, rng):
        # First worker hangs on its first batch; the heartbeat kills it,
        # the replacement (clean — marker claimed) re-answers everything.
        loader = FaultyLoader(
            FaultPlan(hang_on=(1,)), marker_path=str(tmp_path / "claim")
        )
        queries = rng.normal(size=(12, 4))
        with IndexServer(
            snapshot, n_workers=1, policy=_FAST, heartbeat_timeout=0.25,
            index_loader=loader,
        ) as server:
            futures = [server.submit(q, k=3) for q in queries]
            results, errors = collect(futures)
            report = server.stats()
        assert errors == []
        assert all(r is not None for r in results)
        assert_delivered_match(index, queries, [3] * 12, results)
        assert report.n_hung_kills >= 1
        assert report.n_restarts >= 1
        assert report.n_resubmitted >= 1
        assert report.n_requests == 12


class TestCrashedWorker:
    def test_crash_under_deadline_still_answers(
        self, index, snapshot, tmp_path, rng
    ):
        # The worker dies hard mid-batch while every request carries a
        # generous deadline; recovery (restart + resubmit) beats the
        # deadline, so every answer arrives — and matches exactly.
        loader = FaultyLoader(
            FaultPlan(crash_on=(1,)), marker_path=str(tmp_path / "claim")
        )
        queries = rng.normal(size=(8, 4))
        with IndexServer(
            snapshot, n_workers=1, policy=_FAST, index_loader=loader
        ) as server:
            futures = [
                server.submit(q, k=2, deadline_ms=20_000) for q in queries
            ]
            results, errors = collect(futures)
            report = server.stats()
        assert errors == []
        assert_delivered_match(index, queries, [2] * 8, results)
        assert report.n_restarts >= 1
        assert report.n_requests == 8


class TestOverload:
    def test_burst_sheds_with_reject_new(self, index, snapshot, rng):
        # A slow in-process index plus a tiny admission bound: the burst
        # must overflow, the overflow raises synchronously, and every
        # *admitted* request is still answered exactly.
        loader = FaultyLoader(FaultPlan(delay_all=0.05))
        policy = BatchPolicy(
            max_batch=4, max_wait_ms=1.0, max_pending=4,
            shed_policy="reject-new",
        )
        queries = rng.normal(size=(40, 4))
        admitted, shed = [], 0
        with IndexServer(
            snapshot, n_workers=0, policy=policy, index_loader=loader
        ) as server:
            for q in queries:
                try:
                    admitted.append((q, server.submit(q, k=1)))
                except ServerOverloaded:
                    shed += 1
            results, errors = collect([f for _, f in admitted])
            report = server.stats()
        assert shed > 0
        assert errors == []
        assert report.n_shed == shed
        assert report.n_requests == len(admitted)
        assert report.n_requests + report.n_shed == 40
        assert_delivered_match(
            index, [q for q, _ in admitted], [1] * len(admitted), results
        )

    def test_burst_sheds_oldest_with_drop_oldest(self, index, snapshot, rng):
        # Same burst, drop-oldest: nothing raises at submit; instead the
        # oldest queued futures fail with ServerOverloaded while the
        # freshest traffic is served.
        loader = FaultyLoader(FaultPlan(delay_all=0.05))
        policy = BatchPolicy(
            max_batch=4, max_wait_ms=1.0, max_pending=4,
            shed_policy="drop-oldest",
        )
        queries = rng.normal(size=(40, 4))
        with IndexServer(
            snapshot, n_workers=0, policy=policy, index_loader=loader
        ) as server:
            futures = [server.submit(q, k=1) for q in queries]
            results, errors = collect(futures)
            report = server.stats()
        assert errors  # something was shed
        assert all(isinstance(e, ServerOverloaded) for e in errors)
        assert report.n_shed == len(errors)
        assert report.n_requests == 40 - len(errors)
        assert sum(r is not None for r in results) == report.n_requests
        assert_delivered_match(index, queries, [1] * 40, results)


class TestDeadlines:
    def test_deadline_shorter_than_flush_wait(self, snapshot):
        # The flush wait is an hour; the request deadline is 20 ms.  The
        # future must fail fast with DeadlineExceeded instead of waiting
        # for a batch that will never fill.
        policy = BatchPolicy(max_batch=1_000, max_wait_ms=3_600_000.0)
        with IndexServer(snapshot, n_workers=0, policy=policy) as server:
            started = time.perf_counter()
            future = server.submit(np.zeros(4), k=1, deadline_ms=20)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30)
            elapsed = time.perf_counter() - started
            report = server.stats()
        assert elapsed < 10.0
        assert report.n_deadline_exceeded == 1
        assert report.n_requests == 0

    def test_mixed_batch_releases_deadlined_member_at_its_deadline(
        self, index, snapshot, rng
    ):
        # One coalesced batch, two members: one deadline-less, one with
        # a 100 ms deadline, executing on a worker that takes ~1.5 s.
        # No pool-side batch deadline can exist (the deadline-less
        # neighbor still needs the answer), so the reaper must release
        # the deadlined caller at ~its own deadline rather than at
        # delivery — and the neighbor must still get the exact answer.
        loader = FaultyLoader(FaultPlan(delay_all=1.5))
        policy = BatchPolicy(max_batch=2, max_wait_ms=10_000.0)
        q_free, q_bound = rng.normal(size=(2, 4))
        with IndexServer(
            snapshot, n_workers=1, policy=policy, index_loader=loader
        ) as server:
            free = server.submit(q_free, k=2)
            started = time.perf_counter()
            bound = server.submit(q_bound, k=2, deadline_ms=100)
            with pytest.raises(DeadlineExceeded):
                bound.result(timeout=30)
            waited = time.perf_counter() - started
            answer = free.result(timeout=30)
            report = server.stats()
        assert waited < 1.0  # released at the deadline, not at delivery
        expected = index.query(q_free, k=2)
        assert tuple(answer.indices.tolist()) == tuple(
            expected.indices.tolist()
        )
        assert tuple(answer.distances.tolist()) == tuple(
            expected.distances.tolist()
        )
        assert report.n_deadline_exceeded == 1
        assert report.n_requests == 1

    def test_deadlined_caller_released_while_in_process_batch_runs(
        self, snapshot, rng
    ):
        # n_workers=0: the flush executes on the batcher thread and
        # cannot be preempted, so only the reaper can honor the
        # deadline while the slow local batch is still computing.
        loader = FaultyLoader(FaultPlan(delay_all=1.5))
        with IndexServer(
            snapshot, n_workers=0, policy=_FAST, index_loader=loader
        ) as server:
            started = time.perf_counter()
            future = server.submit(rng.normal(size=4), k=1, deadline_ms=100)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=30)
            waited = time.perf_counter() - started
        assert waited < 1.0

    def test_default_deadline_applies_to_every_request(self, snapshot):
        policy = BatchPolicy(max_batch=1_000, max_wait_ms=3_600_000.0)
        with IndexServer(
            snapshot, n_workers=0, policy=policy, default_deadline_ms=20
        ) as server:
            with pytest.raises(DeadlineExceeded):
                server.query(np.zeros(4), k=1)
            report = server.stats()
        assert report.n_deadline_exceeded == 1


class TestChaos:
    def test_every_future_resolves_and_accounting_balances(
        self, index, snapshot, tmp_path, rng
    ):
        # Mixed fault schedule on one of two workers: an injected error,
        # a delayed batch, then a hard crash (replacement is clean).
        # Whatever happens, every future must resolve, every delivered
        # answer must match, and the report must account for all 30
        # submissions.
        loader = FaultyLoader(
            FaultPlan(raise_on=(1,), delay_on=((2, 0.05),), crash_on=(3,)),
            marker_path=str(tmp_path / "claim"),
        )
        queries = rng.normal(size=(30, 4))
        ks = [1 + (i % 3) for i in range(30)]
        with IndexServer(
            snapshot, n_workers=2, policy=_FAST, heartbeat_timeout=0.5,
            index_loader=loader,
        ) as server:
            futures = [
                server.submit(q, k=k, deadline_ms=30_000)
                for q, k in zip(queries, ks)
            ]
            results, errors = collect(futures)
            report = server.stats()
        assert len(results) == 30  # collect() timed out on nothing
        assert all(isinstance(e, ServingError) for e in errors)
        assert_delivered_match(index, queries, ks, results)
        accounted = (
            report.n_requests
            + report.n_failed
            + report.n_shed
            + report.n_deadline_exceeded
        )
        assert accounted == 30
        assert report.n_failed == len(errors)
