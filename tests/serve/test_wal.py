"""Write-ahead log unit contract: framing, checksums, tails, policies.

The log's one job is to make "acknowledged" mean "replayable": every
record round-trips bit-identically, a torn tail (the physical signature
of a crash mid-append) is silently truncated, and any damage *before*
intact records — a log lying about history — is refused loudly with
:class:`WalError`.  These tests drive the format directly, byte by
byte, independent of the serving stack above it.
"""

import os
import struct
import zlib

import numpy as np
import pytest

from repro.serve.wal import (
    SYNC_POLICIES,
    WAL_MAGIC,
    WalError,
    WalWriter,
    encode_delete,
    encode_insert,
    read_wal,
)


@pytest.fixture
def log(tmp_path):
    return os.path.join(tmp_path, "wal.log")


def _write(log, ops, **kwargs):
    with WalWriter(log, **kwargs) as writer:
        for op in ops:
            if op[0] == "insert":
                writer.append_insert(op[1], op[2])
            else:
                writer.append_delete(op[1])
    return writer


class TestRoundTrip:
    def test_empty_log(self, log):
        WalWriter(log).close()
        replay = read_wal(log)
        assert replay.ops == ()
        assert replay.valid_bytes == len(WAL_MAGIC)
        assert not replay.truncated

    def test_records_round_trip_bit_identically(self, log):
        rng = np.random.default_rng(7)
        rows = [rng.standard_normal(6) for _ in range(5)]
        ops = [("insert", 40 + i, row) for i, row in enumerate(rows)]
        ops.insert(3, ("delete", 12))
        ops.append(("delete", 41))
        _write(log, ops)
        replay = read_wal(log)
        assert not replay.truncated
        assert len(replay.ops) == len(ops)
        for got, want in zip(replay.ops, ops):
            assert got[0] == want[0]
            assert got[1] == want[1]
            if want[0] == "insert":
                # Bit-identical, not approximately equal: replay
                # identity rests on the raw float64 bytes surviving.
                assert got[2].tobytes() == want[2].tobytes()

    def test_missing_file_raises_oserror(self, log):
        with pytest.raises(OSError):
            read_wal(log)

    def test_append_to_reopened_log(self, log):
        _write(log, [("insert", 1, np.ones(3))])
        replay = read_wal(log)
        with WalWriter(log, truncate_to=replay.valid_bytes) as writer:
            writer.append_delete(1)
        ops = read_wal(log).ops
        assert [op[0] for op in ops] == ["insert", "delete"]


class TestTornTail:
    def test_partial_final_record_is_truncated(self, log):
        _write(log, [("insert", 1, np.ones(3)), ("delete", 1)])
        intact = read_wal(log)
        blob = open(log, "rb").read()
        # Sever the log at every byte: a cut landing exactly on a
        # record boundary is a clean shorter log; anything else is a
        # torn tail truncated back to the last boundary.
        for cut in range(intact.valid_bytes - 1,
                         len(WAL_MAGIC) + 8, -1):
            with open(log, "wb") as handle:
                handle.write(blob[:cut])
            replay = read_wal(log)
            assert replay.valid_bytes <= cut
            assert replay.truncated == (replay.valid_bytes != cut)

    def test_torn_header_is_empty_not_corrupt(self, log):
        with open(log, "wb") as handle:
            handle.write(WAL_MAGIC[:4])
        replay = read_wal(log)
        assert replay.ops == ()
        assert replay.valid_bytes == 0
        assert replay.truncated

    def test_corrupt_final_record_is_torn_tail(self, log):
        _write(log, [("insert", 1, np.ones(3)), ("delete", 1)])
        blob = bytearray(open(log, "rb").read())
        blob[-1] ^= 0xFF  # flip a payload byte of the last record
        with open(log, "wb") as handle:
            handle.write(bytes(blob))
        replay = read_wal(log)
        assert replay.truncated
        assert [op[0] for op in replay.ops] == ["insert"]

    def test_writer_truncates_past_torn_tail(self, log):
        _write(log, [("insert", 1, np.ones(3))])
        with open(log, "ab") as handle:
            handle.write(b"\x07\x00")  # half a frame header
        replay = read_wal(log)
        assert replay.truncated
        with WalWriter(log, truncate_to=replay.valid_bytes) as writer:
            writer.append_delete(1)
        again = read_wal(log)
        assert not again.truncated
        assert [op[0] for op in again.ops] == ["insert", "delete"]

    def test_writer_rewrites_torn_header(self, log):
        with open(log, "wb") as handle:
            handle.write(WAL_MAGIC[:4])
        with WalWriter(log, truncate_to=0) as writer:
            writer.append_delete(9)
        replay = read_wal(log)
        assert replay.ops == (("delete", 9),)


class TestCorruption:
    def test_mid_stream_flip_raises(self, log):
        _write(log, [("insert", 1, np.ones(3)), ("delete", 1)])
        blob = bytearray(open(log, "rb").read())
        blob[len(WAL_MAGIC) + 9] ^= 0xFF  # inside the *first* payload
        with open(log, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(WalError, match="mid-stream"):
            read_wal(log)

    def test_foreign_header_raises(self, log):
        with open(log, "wb") as handle:
            handle.write(b"PK\x03\x04 definitely not a wal\n")
        with pytest.raises(WalError, match="header"):
            read_wal(log)

    def test_unknown_opcode_raises(self, log):
        payload = b"X" + struct.pack("<q", 3)
        frame = struct.pack(
            "<II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF
        )
        with open(log, "wb") as handle:
            handle.write(WAL_MAGIC + frame + payload)
        with pytest.raises(WalError, match="opcode"):
            read_wal(log)

    def test_malformed_insert_payload_raises(self, log):
        # Valid checksum over a payload whose declared dims disagree
        # with its byte count: framing is fine, semantics are not.
        payload = encode_insert(5, np.ones(4))[:-8]
        frame = struct.pack(
            "<II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF
        )
        with open(log, "wb") as handle:
            handle.write(WAL_MAGIC + frame + payload)
        with pytest.raises(WalError, match="dims"):
            read_wal(log)


class TestSyncPolicies:
    def test_policy_names_are_closed(self):
        assert SYNC_POLICIES == ("always", "group", "off")

    def test_invalid_policy_refused(self, log):
        with pytest.raises(ValueError, match="sync_policy"):
            WalWriter(log, sync_policy="fsync-sometimes")

    def test_invalid_group_knobs_refused(self, log):
        with pytest.raises(ValueError, match="group_ops"):
            WalWriter(log, group_ops=0)
        with pytest.raises(ValueError, match="group_interval_ms"):
            WalWriter(log, group_interval_ms=0.0)

    def test_always_syncs_every_append(self, log):
        writer = _write(
            log,
            [("insert", i, np.ones(2)) for i in range(5)],
            sync_policy="always",
        )
        # +1: creating the file syncs the header; +1: close syncs.
        assert writer.n_appends == 5
        assert writer.n_syncs >= 5

    def test_group_syncs_on_op_count(self, log):
        writer = WalWriter(
            log, sync_policy="group", group_ops=3,
            group_interval_ms=60_000.0,
        )
        before = writer.n_syncs
        writer.append_delete(1)
        writer.append_delete(2)
        assert writer.n_syncs == before
        writer.append_delete(3)
        assert writer.n_syncs == before + 1
        writer.close()

    def test_off_never_syncs_on_append_but_close_does(self, log):
        writer = WalWriter(log, sync_policy="off")
        before = writer.n_syncs
        for i in range(10):
            writer.append_delete(i)
        assert writer.n_syncs == before
        writer.close()
        assert writer.n_syncs == before + 1
        # Every policy's clean close leaves a fully readable log.
        assert len(read_wal(log).ops) == 10

    def test_closed_writer_refuses_appends(self, log):
        writer = WalWriter(log)
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            writer.append_delete(0)


class TestEncoding:
    def test_delete_payload_layout(self):
        payload = encode_delete(258)
        assert payload[:1] == b"D"
        assert struct.unpack("<q", payload[1:])[0] == 258

    def test_insert_payload_layout(self):
        row = np.array([1.5, -2.25])
        payload = encode_insert(7, row)
        assert payload[:1] == b"I"
        row_id, dims = struct.unpack_from("<qI", payload, 1)
        assert (row_id, dims) == (7, 2)
        assert payload[13:] == row.tobytes()
