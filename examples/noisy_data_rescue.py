"""Rescuing similarity search on noisy data (the Figure 12-15 story).

Corrupts the ionosphere-like data the way the paper builds "noisy data
set A" (10 of 34 dimensions replaced by amplitude-60 uniform noise) and
shows the failure mode of classical PCA: the largest eigenvalues now
point at pure noise, so keeping "the directions with the most variance"
keeps garbage.  The coherence ordering identifies the real concepts at
small eigenvalues and restores — in fact improves on — the clean-data
search quality.

Run with:  python examples/noisy_data_rescue.py
"""

import numpy as np

from repro import (
    accuracy_sweep,
    analyze_coherence,
    fit_pca,
    noisy_dataset_a,
)


def main() -> None:
    noisy = noisy_dataset_a(seed=0)
    corrupted = noisy.metadata["corrupted_dims"]
    print(f"dataset: {noisy.name} — {noisy.n_samples} points, "
          f"{noisy.n_dims} dims, {len(corrupted)} replaced by uniform noise")

    # The scatter of Figure 12: where do eigenvalues and coherence point?
    analysis = analyze_coherence(fit_pca(noisy.features), noisy.features)
    print("\ncomponent | eigenvalue | coherence probability")
    for i in range(14):
        marker = " <- planted noise" if i < len(corrupted) else ""
        print(f"{i:9d} | {analysis.eigenvalues[i]:10.2f} | "
              f"{analysis.coherence_probabilities[i]:.4f}{marker}")
    best = int(np.argmax(analysis.coherence_probabilities))
    print(f"most coherent component: #{best} "
          f"(eigenvalue {analysis.eigenvalues[best]:.2f} — near the bottom "
          f"of the spectrum)")

    # The curves of Figure 13: quality under the two orderings.
    coherent = accuracy_sweep(noisy, ordering="coherence", scale=False)
    classical = accuracy_sweep(noisy, ordering="eigenvalue", scale=False)
    c_dims, c_best = coherent.optimal()
    e_dims, e_best = classical.optimal()
    print(f"\nfeature-stripping accuracy (k=3) vs retained dimensions:")
    for m in (2, 4, 6, 10, 20, noisy.n_dims):
        print(f"  {m:3d} dims: coherence {coherent.accuracy_at(m):.4f}  |  "
              f"eigenvalue {classical.accuracy_at(m):.4f}")
    print(f"\ncoherence ordering peaks at {c_dims} dims with {c_best:.4f}")
    print(f"eigenvalue ordering reaches only {e_best:.4f} "
          f"(and needs {e_dims} dims to get there)")
    print("\nconclusion: on noisy data, picking the directions with the most "
          "variance keeps the noise; picking the most *coherent* directions "
          "recovers the concepts.")


if __name__ == "__main__":
    main()
