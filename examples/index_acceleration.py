"""Making index structures practical again (the Section 1.1 story).

In high dimensionality the nearest and farthest neighbors sit at almost
the same distance, so the optimistic bounds that R-trees and kd-trees
prune with stop working — every query degenerates to a full scan.  This
example measures the pruning statistics of three index structures on the
musk-like data at full dimensionality and after aggressive coherence
reduction, and confirms the reduced index still returns high-quality
neighbors.

Run with:  python examples/index_acceleration.py
"""

import numpy as np

from repro import (
    CoherenceReducer,
    KdTreeIndex,
    RTreeIndex,
    VAFileIndex,
    feature_stripping_accuracy,
    fit_pca,
    musk_like,
)


def mean_pruning(index_cls, corpus, queries, k=3):
    index = index_cls(corpus)
    fractions = [
        index.query(q, k=k).stats.pruning_fraction(corpus.shape[0])
        for q in queries
    ]
    return float(np.mean(fractions))


def main() -> None:
    data = musk_like(seed=0)
    rng = np.random.default_rng(0)
    query_rows = rng.choice(data.n_samples, size=25, replace=False)

    # Full-dimensional (rotated) representation vs aggressive reduction.
    full = fit_pca(data.features, scale=True).transform(data.features)
    reducer = CoherenceReducer(n_components=13, ordering="coherence", scale=True)
    reduced = reducer.fit_transform(data.features)
    print(f"dataset: {data.name} — {data.n_samples} points")
    print(f"representations: full {full.shape[1]}d vs reduced {reduced.shape[1]}d "
          f"({reducer.retained_variance_fraction():.1%} of variance kept)")

    print("\nfraction of the corpus PRUNED per 3-NN query (higher is better):")
    print(f"{'index':10s} | {'full 166d':>10s} | {'reduced 13d':>11s}")
    for name, cls in (("kd-tree", KdTreeIndex), ("R-tree", RTreeIndex),
                      ("VA-file", VAFileIndex)):
        before = mean_pruning(cls, full, full[query_rows])
        after = mean_pruning(cls, reduced, reduced[query_rows])
        print(f"{name:10s} | {before:10.3f} | {after:11.3f}")

    print("\n...and the quality did not pay for it:")
    print(f"  full-dim accuracy:    "
          f"{feature_stripping_accuracy(full, data.labels):.4f}")
    print(f"  reduced-dim accuracy: "
          f"{feature_stripping_accuracy(reduced, data.labels):.4f}")
    print("\naggressive coherence reduction buys index pruning AND better "
          "neighbors at the same time — the paper's closing argument.")


if __name__ == "__main__":
    main()
