"""Serving a dynamic database: streaming inserts, drift, automatic refit.

A similarity index in production cannot refit PCA from scratch on every
insert (the dynamic-database setting of Ravi Kanth et al., the paper's
reference [17]).  This example streams data through a
:class:`DynamicReducer`: O(d^2) moment updates per batch, a frozen
serving basis, and a drift monitor that notices when the distribution
rotates away from the frozen subspace and triggers a coherence-ranked
refit.

Run with:  python examples/dynamic_stream.py
"""

import numpy as np

from repro import DynamicReducer, feature_stripping_accuracy, latent_concept_dataset


def main() -> None:
    # Segment 1: concepts live in one set of dimensions.
    first = latent_concept_dataset(400, 24, 3, noise_std=0.8, seed=0)
    # Segment 2: the world changes — same kind of data, concepts moved.
    second = latent_concept_dataset(400, 24, 3, noise_std=0.8, seed=100)
    permutation = np.random.default_rng(0).permutation(24)
    second = second.with_features(second.features[:, permutation])

    reducer = DynamicReducer(
        n_dims=24, n_components=3, ordering="coherence",
        drift_threshold=0.9, reservoir_size=400,
    )

    print("streaming segment 1 (stationary)...")
    for start in range(0, 400, 50):
        reducer.insert(first.features[start : start + 50])
        print(f"  rows={reducer.n_seen:4d}  refits={reducer.refit_count}  "
              f"drift={reducer.drift_level():.3f}")

    frozen_basis = reducer.components_.copy()
    print("\nstreaming segment 2 (the distribution rotates)...")
    for start in range(0, 400, 50):
        reducer.insert(second.features[start : start + 50])
        print(f"  rows={reducer.n_seen:4d}  refits={reducer.refit_count}  "
              f"drift={reducer.drift_level():.3f}")

    # How much did the automatic refit buy on the new data?
    stale = (second.features - second.features.mean(axis=0)) @ frozen_basis
    fresh = reducer.transform(second.features)
    print("\npost-drift feature-stripping accuracy (k=3):")
    print(f"  frozen segment-1 basis: "
          f"{feature_stripping_accuracy(stale, second.labels):.4f}")
    print(f"  drift-refit basis:      "
          f"{feature_stripping_accuracy(fresh, second.labels):.4f}")
    print("\nthe monitor noticed the rotation (drift level fell below the "
          "threshold), refit from the reservoir sample, and recovered the "
          "quality a frozen index silently loses.")


if __name__ == "__main__":
    main()
