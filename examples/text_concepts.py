"""Text retrieval: why reduction helps most where it started — LSI.

The paper's whole program begins from an observation about text: keeping
a small number of SVD directions of a term-document matrix *improves*
retrieval, because synonymy (many terms, one meaning) and polysemy (one
term, many meanings) make raw term overlap a noisy similarity signal,
while the latent directions are semantic concepts.  This example builds
a synthetic topical corpus with planted synonymy/polysemy, compares raw
TF-IDF retrieval against LSI, and shows the coherence model certifying
the semantic directions.

Run with:  python examples/text_concepts.py
"""

from repro import UNIFORM_BASELINE_CP, feature_stripping_accuracy
from repro.text import (
    CountVectorizer,
    LatentSemanticIndex,
    synthetic_topic_corpus,
    tfidf_weight,
)


def main() -> None:
    corpus = synthetic_topic_corpus(n_documents=300, n_topics=5, seed=0)
    print(f"corpus: {corpus.n_documents} documents, "
          f"{len(corpus.vocabulary)} terms, {corpus.n_topics} topics")
    print(f"sample document: {' '.join(corpus.documents[0][:8])} ...")

    vectorizer = CountVectorizer().fit(corpus.documents)
    tfidf, _ = tfidf_weight(vectorizer.transform(corpus.documents))
    raw = feature_stripping_accuracy(tfidf, corpus.labels, k=3)
    print(f"\nraw TF-IDF ({tfidf.shape[1]} dims): topic accuracy of "
          f"3-NN retrieval = {raw:.4f}")

    lsi = LatentSemanticIndex(n_concepts=5).fit(corpus.documents)
    reduced = feature_stripping_accuracy(lsi.document_vectors_, corpus.labels, k=3)
    print(f"LSI (5 concept dims):      topic accuracy = {reduced:.4f}")

    print("\ncoherence probability of each kept singular direction")
    print(f"(uniform-noise baseline is {UNIFORM_BASELINE_CP:.4f}):")
    for i, value in enumerate(lsi.concept_coherence()):
        marker = "  <- semantic concept" if value > UNIFORM_BASELINE_CP + 0.05 else ""
        print(f"  direction {i}: {value:.4f}{marker}")

    # Retrieve for one document and show the topic labels coming back.
    query_row = 10
    results = lsi.query(corpus.documents[query_row], k=4)
    print(f"\nquery: document {query_row} (topic {corpus.labels[query_row]})")
    for rank, (index, similarity) in enumerate(results):
        print(f"  hit {rank}: document {index} (topic {corpus.labels[index]}), "
              f"cosine {similarity:.4f}")
    print("\nfive numbers per document beat hundreds of raw term counts — "
          "the observation the whole paper generalizes.")


if __name__ == "__main__":
    main()
