"""Why data scaling changes everything (the Section 2.2 story).

Demographic-style data mixes attributes with wildly different units —
ages in years, salaries in dollars.  Covariance PCA on such data is
dominated by the big-unit attributes; studentizing to unit variance
(equivalently: PCA on the correlation matrix) recovers the real
structure, lifts the coherence probabilities, and improves search
quality.  The arrhythmia-like dataset (scales spanning ~1.5 decades,
plus constant columns) shows the effect most strongly.

Run with:  python examples/scaling_matters.py
"""

from repro import (
    accuracy_sweep,
    analyze_coherence,
    arrhythmia_like,
    fit_pca,
)


def main() -> None:
    data = arrhythmia_like(seed=0)
    stds = data.features.std(axis=0)
    print(f"dataset: {data.name} — {data.n_dims} dims, "
          f"{int((stds == 0).sum())} constant columns,")
    positive = stds[stds > 0]
    print(f"column scales span {positive.min():.3g} .. {positive.max():.3g} "
          f"({positive.max() / positive.min():.0f}x)")

    raw = analyze_coherence(fit_pca(data.features), data.features)
    scaled = analyze_coherence(fit_pca(data.features, scale=True), data.features)
    print("\nmean coherence probability of the top-10 eigenvectors:")
    print(f"  covariance PCA (raw units):     "
          f"{raw.coherence_probabilities[:10].mean():.4f}")
    print(f"  correlation PCA (studentized):  "
          f"{scaled.coherence_probabilities[:10].mean():.4f}")

    raw_sweep = accuracy_sweep(data, ordering="eigenvalue", scale=False)
    scaled_sweep = accuracy_sweep(data, ordering="eigenvalue", scale=True)
    r_dims, r_best = raw_sweep.optimal()
    s_dims, s_best = scaled_sweep.optimal()
    print("\nbest feature-stripping accuracy over all dimensionalities:")
    print(f"  raw units:   {r_best:.4f} (at {r_dims} dims)")
    print(f"  studentized: {s_best:.4f} (at {s_dims} dims)")
    print("\nstudentizing first is not cosmetic: it changes which directions "
          "PCA finds, raises their coherence, and wins on quality.")


if __name__ == "__main__":
    main()
