"""Running the paper's analysis on your own data files.

Everything in this library runs on any UCI-layout CSV (one record per
row, numeric features, class label in one column, ``?`` for missing
values) — this example demonstrates the full workflow on a file:

1. write a dataset to disk in that layout (standing in for your file);
2. load it with :func:`repro.load_csv_dataset`;
3. diagnose reducibility, pick the representation, reduce, evaluate;
4. persist the fitted reducer so a query service can load it.

The same steps are available from the shell:

    repro diagnose mydata.csv
    repro evaluate mydata.csv --ordering coherence
    repro reduce mydata.csv -o reduced.csv

Run with:  python examples/bring_your_own_data.py
"""

import os
import tempfile

from repro import (
    CoherenceReducer,
    diagnose_reducibility,
    feature_stripping_accuracy,
    load_csv_dataset,
    noisy_dataset_a,
)
from repro.core import load_reducer, save_reducer


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        # 1. A stand-in for "your" file: the noisy-A dataset on disk.
        csv_path = os.path.join(workdir, "mydata.csv")
        noisy_dataset_a(seed=0).to_csv(csv_path)
        print(f"wrote {csv_path} ({os.path.getsize(csv_path)} bytes, "
              f"UCI layout: features then label)")

        # 2. Load it back — this is where your own file enters.
        data = load_csv_dataset(csv_path, name="mydata")
        print(f"loaded: {data.n_samples} records x {data.n_dims} features, "
              f"{data.n_classes} classes")

        # 3. Diagnose and reduce.  The automatic ordering reads the
        #    coherence spectrum and picks its own cut-off.
        diagnosis = diagnose_reducibility(data.features, scale=False)
        print(f"diagnosis: {diagnosis.summary()}")
        reducer = CoherenceReducer(ordering="automatic", scale=False)
        reduced = reducer.fit_transform(data.features)
        print(f"automatic cut-off kept {reducer.n_selected} of "
              f"{data.n_dims} dimensions "
              f"({reducer.retained_variance_fraction():.1%} of the variance)")
        before = feature_stripping_accuracy(data.features, data.labels)
        after = feature_stripping_accuracy(reduced, data.labels)
        print(f"neighbor quality: {before:.4f} full-dimensional -> "
              f"{after:.4f} reduced")

        # 4. Ship the fitted transform to a query service.
        model_path = os.path.join(workdir, "reducer.npz")
        save_reducer(reducer, model_path)
        serving = load_reducer(model_path)
        query = serving.transform(data.features[0])
        print(f"reloaded reducer answers queries: first row -> "
              f"{query.shape[0]}-dimensional vector")
    print("\nswap the stand-in CSV for a real UCI file (ionosphere.data, "
          "musk.data, arrhythmia.data) and every number above is computed "
          "on the paper's actual evaluation data.")


if __name__ == "__main__":
    main()
