"""Quickstart: diagnose, reduce, and measure similarity-search quality.

Runs the whole method of the paper on the ionosphere-like dataset:

1. diagnose whether the dataset is amenable to reduction at all
   (Section 3 — a flat coherence spectrum near 0.68 means "don't");
2. fit a coherence-guided reducer on the studentized data (Section 2.2);
3. compare feature-stripping k-NN quality (Section 4's protocol) at
   full dimensionality vs the aggressively reduced representation.

Run with:  python examples/quickstart.py
"""

from repro import (
    CoherenceReducer,
    diagnose_reducibility,
    feature_stripping_accuracy,
    ionosphere_like,
)


def main() -> None:
    data = ionosphere_like(seed=0)
    print(f"dataset: {data.name} — {data.n_samples} points, "
          f"{data.n_dims} dimensions, {data.n_classes} classes")

    # 1. Is this dataset reducible at all?
    diagnosis = diagnose_reducibility(data.features)
    print(f"\ndiagnosis: {diagnosis.summary()}")
    if diagnosis.verdict != "reducible":
        print("a flat coherence spectrum means reduction cannot help; stopping")
        return

    # 2. Reduce aggressively — keep only the concept-bearing directions.
    budget = max(diagnosis.n_concepts, 5)
    reducer = CoherenceReducer(n_components=budget, ordering="coherence", scale=True)
    reduced = reducer.fit_transform(data.features)
    print(f"\nreduced {data.n_dims} -> {reducer.n_selected} dimensions, "
          f"keeping {reducer.retained_variance_fraction():.1%} of the variance")

    # 3. Did quality improve?  (Higher is better; the reduced space wins
    #    because the discarded directions were noise.)
    full_quality = feature_stripping_accuracy(data.features, data.labels, k=3)
    reduced_quality = feature_stripping_accuracy(reduced, data.labels, k=3)
    print(f"\nfeature-stripping accuracy (k=3):")
    print(f"  full {data.n_dims}-dimensional space: {full_quality:.4f}")
    print(f"  reduced {reducer.n_selected}-dimensional space: {reduced_quality:.4f}")
    verdict = "improved" if reduced_quality > full_quality else "did not improve"
    print(f"\naggressive reduction {verdict} the quality of similarity search")


if __name__ == "__main__":
    main()
