"""Figure 3 — eigenvalue magnitude vs. coherence probability (Musk, normalized).

The paper's scatter shows the two quantities strongly correlated on the
normalized musk data, with ~11 eigenvectors standing apart from the rest.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_fig03_musk_scatter(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig03", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: strong correlation on clean, normalized data"
    )
    exp.emit(report, "fig03_musk_scatter", capsys)

    assert result.data["rank_correlation"] > 0.6
