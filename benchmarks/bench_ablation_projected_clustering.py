"""Ablation — the Section 3.1 extension: projected clustering first.

Two sub-populations whose concepts occupy disjoint subspaces: globally
hard, locally easy.  Per-cluster reduction must beat one global basis.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_projected_clustering(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-projected", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\nexpected: per-cluster reduction wins when the concepts of "
        "different sub-populations occupy different subspaces"
    )
    exp.emit(report, "ablation_projected_clustering", capsys)

    assert result.data["local"] > result.data["global"]
