"""Ablation — multi-probe LSH and the fused gemm refinement kernel.

Two measurements that motivated the memory-lean scan work:

* **Multi-probe vs more tables.**  Single-probe E2LSH buys recall with
  memory: every extra table is another full hash of the corpus.
  Query-directed probing (Lv et al., VLDB 2007) buys the same recall
  with query time instead, by visiting the neighboring buckets most
  likely to hold near misses.  The grid here sweeps tables x probes on
  a clustered corpus and records recall against the exact scan plus the
  candidate-funnel width, expecting T=8 probes over L/4 tables to meet
  or beat single-probe recall over L tables.
* **Fused gemm refine vs gather refine.**  Both kernels answer masked
  exact refinement bit-identically; the gather kernel materializes one
  row per surviving (query, candidate) pair, while the gemm kernel
  compacts survivors into fixed-shape tiles and runs them through the
  blocked Gram expansion.  On wide survivor sets (the
  projection-screened index at m = d/4 over a correlated corpus) the
  tiled kernel should win wall clock outright.

Results land in ``benchmarks/results/BENCH_multiprobe_lsh.json``
(schema ``bench_multiprobe_lsh/v1``) plus a human-readable report.
Set ``REPRO_BENCH_MULTIPROBE_SCALE=smoke`` for the tiny CI
configuration — the recall ordering and the kernel bit-identity are
asserted at every scale; the wall-clock comparison is asserted only at
full scale (smoke-sized corpora fit in cache and time noise dominates).
"""

import json
import os
import time

import numpy as np

import _experiments as exp
from repro.evaluation.reporting import format_table
from repro.search import (
    BruteForceIndex,
    LshIndex,
    ProjectionScreenedIndex,
    recall_against_exact,
)

_SMOKE = (
    os.environ.get("REPRO_BENCH_MULTIPROBE_SCALE", "").lower() == "smoke"
)
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_JSON_NAME = "BENCH_multiprobe_lsh.json"

_K = 10
_D = 16
_N_HASHES = 6
_BUCKET_WIDTH = 8.0
_TABLES = (4, 8, 16)
_PROBES = (1, 2, 4, 8, 16)

if _SMOKE:
    _N = 2_000
    _N_QUERIES = 60
    _REFINE_N = 3_000
    _REFINE_QUERIES = 40
else:
    _N = 20_000
    _N_QUERIES = 200
    _REFINE_N = 50_000
    _REFINE_QUERIES = 400


def _clustered_corpus(rng):
    """Clustered points: LSH has genuine near neighbors to find."""
    centers = rng.normal(size=(max(10, _N // 200), _D)) * 8.0
    labels = rng.integers(0, centers.shape[0], size=_N)
    return centers[labels] + rng.normal(size=(_N, _D))


def _correlated_corpus(rng):
    """Latent rank-4 corpus mixed into _D dims (projscreen's habitat)."""
    latent = rng.standard_normal((_REFINE_N, 4))
    mixing = rng.standard_normal((4, _D))
    return latent @ mixing + 0.05 * rng.standard_normal((_REFINE_N, _D))


def _probe_grid(rng):
    corpus = _clustered_corpus(rng)
    queries = corpus[
        rng.choice(_N, size=_N_QUERIES, replace=False)
    ] + 0.1 * rng.normal(size=(_N_QUERIES, _D))
    # One exact reference serves the whole grid (the sweep would
    # otherwise rebuild it per configuration).
    reference = BruteForceIndex(corpus)
    rows = []
    for n_tables in _TABLES:
        for n_probes in _PROBES:
            index = LshIndex(
                corpus,
                n_tables=n_tables,
                n_hashes=_N_HASHES,
                bucket_width=_BUCKET_WIDTH,
                seed=1,
                n_probes=n_probes,
            )
            recall = recall_against_exact(
                index, queries, k=_K, reference=reference
            )
            stats = index.query_batch(queries, k=_K).stats
            rows.append(
                {
                    "n_tables": n_tables,
                    "n_probes": n_probes,
                    "effective_probes": index.effective_probes,
                    "recall": recall,
                    "candidates_per_query": (
                        stats.candidates_generated / _N_QUERIES
                    ),
                    "scanned_per_query": stats.points_scanned / _N_QUERIES,
                    "buckets_visited_per_query": (
                        stats.nodes_visited / _N_QUERIES
                    ),
                }
            )
    return rows


def _refine_comparison(rng):
    corpus = _correlated_corpus(rng)
    queries = rng.standard_normal((_REFINE_QUERIES, _D)) * corpus.std()
    timings = {}
    answers = {}
    for kernel in ("gather", "gemm"):
        index = ProjectionScreenedIndex(
            corpus, subspace_dim=_D // 4, refine_kernel=kernel
        )
        start = time.perf_counter()
        batch = index.query_batch(queries, k=_K)
        timings[kernel] = time.perf_counter() - start
        answers[kernel] = [
            (r.indices.tolist(), r.distances.tolist()) for r in batch
        ]
        scanned = batch.stats.points_scanned
    return {
        "corpus_size": _REFINE_N,
        "subspace_dim": _D // 4,
        "rows_refined": scanned,
        "gather_seconds": timings["gather"],
        "gemm_seconds": timings["gemm"],
        "speedup": timings["gather"] / timings["gemm"],
        "identical": answers["gather"] == answers["gemm"],
    }


def _run():
    rng = np.random.default_rng(exp.SEED)
    return {"grid": _probe_grid(rng), "refine": _refine_comparison(rng)}


def _emit_json(result):
    payload = {
        "schema": "bench_multiprobe_lsh/v1",
        "config": {
            "scale": "smoke" if _SMOKE else "full",
            "corpus_size": _N,
            "dims": _D,
            "n_queries": _N_QUERIES,
            "k": _K,
            "n_hashes": _N_HASHES,
            "bucket_width": _BUCKET_WIDTH,
            "tables": list(_TABLES),
            "probes": list(_PROBES),
            "refine_corpus_size": _REFINE_N,
            "refine_queries": _REFINE_QUERIES,
            "seed": exp.SEED,
        },
        "grid": result["grid"],
        "refine": result["refine"],
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, _JSON_NAME), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_ablation_multiprobe_lsh(benchmark, capsys):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    _emit_json(result)

    grid, refine = result["grid"], result["refine"]
    table = format_table(
        ["tables", "probes", "recall", "cand/q", "scan/q", "buckets/q"],
        [
            (
                row["n_tables"],
                row["n_probes"],
                f"{row['recall']:.3f}",
                f"{row['candidates_per_query']:.0f}",
                f"{row['scanned_per_query']:.0f}",
                f"{row['buckets_visited_per_query']:.0f}",
            )
            for row in grid
        ],
        title=(
            f"Multi-probe LSH grid ({_N:,} x {_D} clustered corpus, "
            f"{_N_QUERIES} queries, k={_K}, w={_BUCKET_WIDTH}, "
            f"{_N_HASHES} hashes)"
        ),
    )
    table += (
        f"\n\nfused refine at projscreen m={_D // 4} on "
        f"{refine['corpus_size']:,} correlated points: "
        f"gather {refine['gather_seconds']:.3f}s vs "
        f"gemm {refine['gemm_seconds']:.3f}s "
        f"({refine['speedup']:.2f}x), bit-identical: "
        f"{'yes' if refine['identical'] else 'NO'}"
    )
    exp.emit(table, "ablation_multiprobe_lsh", capsys)

    by_config = {
        (row["n_tables"], row["n_probes"]): row["recall"] for row in grid
    }
    # Recall is monotone in probes at fixed tables: probing visits a
    # prefix-extension of the same buckets, so this holds exactly.
    for n_tables in _TABLES:
        recalls = [by_config[(n_tables, t)] for t in _PROBES]
        assert recalls == sorted(recalls), (
            f"recall not monotone in probes at {n_tables} tables: {recalls}"
        )
    # The headline trade: 8 probes over a quarter of the tables meets
    # or beats single-probe recall over the full table count.
    assert by_config[(_TABLES[0], 8)] >= by_config[(_TABLES[-1], 1)], (
        "multi-probe failed to buy back the recall of 4x the tables"
    )
    # The two refinement kernels answer identically at every scale.
    assert refine["identical"], (
        "gemm refine diverged from gather refine on projscreen"
    )
    if not _SMOKE:
        # Wall clock is only meaningful at full scale: the fused tiled
        # kernel must beat the gather kernel outright on wide funnels.
        assert refine["gemm_seconds"] < refine["gather_seconds"], (
            f"fused refine ({refine['gemm_seconds']:.3f}s) did not beat "
            f"gather ({refine['gather_seconds']:.3f}s)"
        )
