"""Ablation — cyclic Jacobi vs LAPACK eigensolver.

The from-scratch Jacobi solver exists as an independent cross-check on
the numerical substrate: identical spectra, much slower — the price of a
60-line solver, not a correctness issue.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_eigensolver(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-eigensolver", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + "\nexpected: identical spectra; Jacobi much slower"
    exp.emit(report, "ablation_eigensolver", capsys)

    assert result.data["spectrum_gap"] < 1e-9
    assert result.data["trace_gap"] < 1e-9
