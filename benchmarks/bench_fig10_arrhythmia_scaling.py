"""Figure 10 — coherence probability per eigenvector, raw vs scaled (Arrhythmia).

The paper: "the coherence probability of each vector in the transformed
data representation increases significantly after performing the scaling"
— the strongest scaling effect of the three datasets, because the raw
arrhythmia columns span wildly different scales.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_fig10_arrhythmia_scaling(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig10", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: coherence increases significantly after scaling"
    )
    exp.emit(report, "fig10_arrhythmia_scaling", capsys)

    assert result.data["lift"] > 0.0
