"""Figure 11 — quality of similarity search vs dimensions (Arrhythmia).

The paper: optimum at the top 10 of 279 eigenvectors; scaled quality is
significantly better than unscaled.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_fig11_arrhythmia_quality(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig11", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: optimum at ~10 of 279; scaling raises quality significantly"
    )
    exp.emit(report, "fig11_arrhythmia_quality", capsys)

    s_dims, s_best = result.data["scaled_optimum"]
    _, u_best = result.data["raw_optimum"]
    assert 5 <= s_dims <= 20
    assert s_best > result.data["scaled"].full_dimensional_accuracy
    assert s_best > u_best
