"""Figure 5 — quality of similarity search vs dimensions retained (Musk).

Feature-stripping prediction accuracy (k = 3) against the number of
retained eigenvalue-ordered components, scaled vs unscaled.  The paper's
shape: the scaled curve consistently dominates, the optimum arrives at
~13 of 166 components, and the optimum beats full dimensionality.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_fig05_musk_quality(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig05", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: scaled dominates; optimum ~13 of 166 and above full-dim"
    )
    exp.emit(report, "fig05_musk_quality", capsys)

    s_dims, s_best = result.data["scaled_optimum"]
    _, u_best = result.data["raw_optimum"]
    assert s_best > u_best
    assert s_best > result.data["scaled"].full_dimensional_accuracy
    assert s_dims < 30
