"""Figure 12 — poor matching between coherence and eigenvalues (Noisy A).

Noisy data set A is the ionosphere data with 10 of 34 dimensions replaced
by amplitude-60 uniform noise.  On the unscaled covariance PCA, the
largest eigenvalues now belong to the planted noise and carry low
coherence probability, while the genuinely coherent directions hide at
small eigenvalues — the regime where the classical selection rule fails.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_fig12_noisyA_scatter(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig12", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: largest eigenvalues <-> low coherence, and vice versa"
    )
    exp.emit(report, "fig12_noisyA_scatter", capsys)

    cp = result.data["analysis"].coherence_probabilities
    n_noise = result.data["n_corrupted"]
    best = result.data["best_cp_indices"][:4]
    assert cp[:n_noise].max() < cp[best].min()
    assert best.min() >= n_noise
