"""Ablation — projection-screened exact search vs the brute-force scan.

The projection-screened index claims the paper's reduced subspace is an
exact-search accelerator, not an approximation: scan cheap float32
reduced rows, prune against the running k-th exact distance, refine only
the survivors — and answer bit-identically to the full scan.  This
bench runs the bound-tightness experiment the paper implies but never
runs, across the screening dimension m ∈ {2, 4, 8, 16} and both
subspace orderings (eigenvalue vs the paper's coherence probability),
on a correlated synthetic corpus (latent rank 4 mixed into d=16) where
reduction has structure to find:

* **pruning fraction** — corpus rows never refined at full width,
  audited through :meth:`QueryStats.pruning_fraction`;
* **bound tightness** — mean reduced/full distance ratio over sampled
  query-point pairs (1.0 = the lower bound is the distance itself);
* **bytes scanned** — float32 reduced bytes + float64 refined bytes vs
  the brute-force corpus sweep;
* **served QPS** — the end-to-end serving comparison via
  :func:`repro.serve.bench.compare_serving`, identity-checked on every
  run.

Results land in ``benchmarks/results/BENCH_projection_screen.json``
(schema ``bench_projection_screen/v1``) plus a human-readable report.
Set ``REPRO_BENCH_PROJSCREEN_SCALE=smoke`` for the tiny CI
configuration — the exactness assertions hold at every scale.
"""

import json
import os
import tempfile

import numpy as np

import _experiments as exp
from repro.evaluation.reporting import format_table
from repro.search import BruteForceIndex, ProjectionScreenedIndex
from repro.serve import BatchPolicy
from repro.serve.bench import compare_serving

_SMOKE = (
    os.environ.get("REPRO_BENCH_PROJSCREEN_SCALE", "").lower() == "smoke"
)
_K = 10
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_JSON_NAME = "BENCH_projection_screen.json"

_D = 16
_LATENT = 4
_NOISE = 0.05
if _SMOKE:
    _N = 800
    _N_QUERIES = 60
else:
    _N = 50_000
    _N_QUERIES = 400

_SUBSPACE_DIMS = (2, 4, 8, 16)
_ORDERINGS = ("eigen", "coherence")
# Pairs sampled for the bound-tightness ratio (full scale would be
# n_queries * n ratios; a bounded sample keeps the bench honest without
# dominating its runtime).
_TIGHTNESS_QUERIES = 40
_TIGHTNESS_POINTS = 2_000


def _correlated_corpus(rng):
    """Latent rank-_LATENT corpus mixed into _D dims plus mild noise."""
    latent = rng.standard_normal((_N, _LATENT))
    mixing = rng.standard_normal((_LATENT, _D))
    return latent @ mixing + _NOISE * rng.standard_normal((_N, _D))


def _bound_tightness(index, corpus, queries):
    """Mean reduced/full distance ratio over sampled query-point pairs."""
    q_sample = queries[: min(len(queries), _TIGHTNESS_QUERIES)]
    p_sample = corpus[: min(len(corpus), _TIGHTNESS_POINTS)]
    spec = index.projection
    reduced_q = spec.reduce(q_sample)
    reduced_p = spec.reduce(p_sample)
    full = np.sqrt(
        np.sum(
            np.square(q_sample[:, None, :] - p_sample[None, :, :]), axis=2
        )
    )
    reduced = np.sqrt(
        np.sum(
            np.square(reduced_q[:, None, :] - reduced_p[None, :, :]), axis=2
        )
    )
    nonzero = full > 0
    return float(np.mean(reduced[nonzero] / full[nonzero]))


def _run():
    rng = np.random.default_rng(exp.SEED)
    corpus = _correlated_corpus(rng)
    queries = rng.standard_normal((_N_QUERIES, _D)) @ np.diag(
        np.full(_D, corpus.std())
    )
    policy = BatchPolicy(max_batch=64, max_wait_ms=1.0)
    reference = BruteForceIndex(corpus)

    rows = []
    with tempfile.TemporaryDirectory() as workdir:
        # Brute-force baseline row: the bytes and QPS every screened
        # configuration is normalized against.
        path = os.path.join(workdir, "bruteforce.npz")
        reference.save(path)
        comparison = compare_serving(
            reference, path, queries, _K, n_workers=0, policy=policy
        )
        rows.append(
            {
                "kind": "bruteforce",
                "subspace_dim": None,
                "ordering": None,
                "pruning_fraction": 0.0,
                "bound_tightness": 1.0,
                "reduced_bytes": 0,
                "refined_bytes": _N_QUERIES * _N * _D * 8,
                "total_bytes": _N_QUERIES * _N * _D * 8,
                "closed_loop_qps": comparison.closed_loop_qps,
                "served_qps": comparison.served_qps,
                "identical": comparison.identical,
            }
        )
        for ordering in _ORDERINGS:
            for m in _SUBSPACE_DIMS:
                index = ProjectionScreenedIndex(
                    corpus, subspace_dim=m, ordering=ordering
                )
                stats = index.query_batch(queries, k=_K).stats
                pruning = stats.pruning_fraction(_N_QUERIES * _N)
                reduced_bytes = stats.reduced_rows_scanned * m * 4
                refined_bytes = stats.points_scanned * _D * 8
                path = os.path.join(workdir, f"{ordering}-{m}.npz")
                index.save(path)
                comparison = compare_serving(
                    index, path, queries, _K, n_workers=0, policy=policy
                )
                rows.append(
                    {
                        "kind": "projscreen",
                        "subspace_dim": m,
                        "ordering": ordering,
                        "pruning_fraction": pruning,
                        "bound_tightness": _bound_tightness(
                            index, corpus, queries
                        ),
                        "reduced_bytes": reduced_bytes,
                        "refined_bytes": refined_bytes,
                        "total_bytes": reduced_bytes + refined_bytes,
                        "closed_loop_qps": comparison.closed_loop_qps,
                        "served_qps": comparison.served_qps,
                        "identical": comparison.identical,
                    }
                )
    return rows


def _emit_json(rows):
    payload = {
        "schema": "bench_projection_screen/v1",
        "config": {
            "scale": "smoke" if _SMOKE else "full",
            "corpus_size": _N,
            "dims": _D,
            "latent_rank": _LATENT,
            "noise": _NOISE,
            "n_queries": _N_QUERIES,
            "k": _K,
            "subspace_dims": list(_SUBSPACE_DIMS),
            "orderings": list(_ORDERINGS),
            "seed": exp.SEED,
        },
        "runs": rows,
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, _JSON_NAME), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_ablation_projection_screen(benchmark, capsys):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    _emit_json(rows)

    brute_bytes = rows[0]["total_bytes"]
    table = format_table(
        [
            "kind", "m", "ordering", "pruned", "tightness",
            "bytes vs brute", "served q/s", "bit-identical",
        ],
        [
            (
                row["kind"],
                row["subspace_dim"] if row["subspace_dim"] else "-",
                row["ordering"] or "-",
                f"{row['pruning_fraction']:.3f}",
                f"{row['bound_tightness']:.3f}",
                f"{row['total_bytes'] / brute_bytes:.3f}x",
                f"{row['served_qps']:.0f}",
                "yes" if row["identical"] else "NO",
            )
            for row in rows
        ],
        title=(
            "Projection-screened exact search vs brute force "
            f"({_N:,} x {_D} corpus, latent rank {_LATENT}, "
            f"{_N_QUERIES} queries, k={_K})"
        ),
    )
    exp.emit(table, "ablation_projection_screen", capsys)

    # Exactness holds in EVERY run at EVERY scale: a screened serving
    # deployment never answers differently from the full scan.
    for row in rows:
        assert row["identical"], (
            f"m={row['subspace_dim']} ({row['ordering']}) delivered "
            "answers that differ from the brute-force scan"
        )
    # The headline claim: at m = d/4 on the correlated corpus, both
    # orderings prune at least half of the full-width refinements.
    quarter = {
        row["ordering"]: row["pruning_fraction"]
        for row in rows
        if row["kind"] == "projscreen" and row["subspace_dim"] == _D // 4
    }
    assert set(quarter) == set(_ORDERINGS)
    for ordering, fraction in quarter.items():
        assert fraction >= 0.5, (
            f"pruning fraction {fraction:.3f} < 0.5 at m={_D // 4} "
            f"({ordering}-ordered)"
        )
    # Monotone bytes sanity: every screened run moves fewer bytes than
    # the brute-force sweep.
    for row in rows[1:]:
        assert row["total_bytes"] < brute_bytes
