"""Ablation — corruption amplitude sweep.

For small amplitudes the planted noise stays below the signal
eigenvalues and the orderings agree; past the crossover the noise owns
the top of the spectrum and the eigenvalue ordering starts losing badly.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_noise_amplitude(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-amplitude", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\nexpected: at amplitude ~1 (noise variance below signal) the "
        "orderings roughly agree; past the unit-variance crossover the "
        "eigenvalue ordering's budget buys pure noise"
    )
    exp.emit(report, "ablation_noise_amplitude", capsys)

    rows = result.data["rows"]
    small, large = rows[0], rows[-1]
    assert abs(small[4] - small[5]) < 0.05
    assert large[4] > large[5] + 0.15
    assert (large[4] - large[5]) > (small[4] - small[5])
