"""Figure 6 — eigenvalue magnitude vs. coherence probability (Ionosphere).

The paper notes the largest ~5 eigenvalues are isolated from the rest in
both magnitude and coherence probability, with a second cluster of 5
behind them.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_fig06_ionosphere_scatter(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig06", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: leading eigenvalues separated in both magnitude and CP"
    )
    exp.emit(report, "fig06_ionosphere_scatter", capsys)

    analysis = result.data["analysis"]
    cp = analysis.coherence_probabilities
    assert result.data["rank_correlation"] > 0.6
    assert cp[:5].mean() > cp[15:].mean() + 0.2
