"""Ablation — micro-batched serving vs. closed-loop one-query-per-call.

The serving layer (:mod:`repro.serve`) claims that single-query traffic
can inherit the vectorized ``query_batch`` speedup by coalescing
individually arriving requests into micro-batches, and that a pool of
worker processes over one ``mmap_points=True`` snapshot serves them
without multiplying corpus memory.  This bench measures the claim:

* For every index kind, a **closed-loop baseline** answers the request
  stream with one ``index.query`` call per request.
* The same stream is then pushed through :class:`repro.serve.IndexServer`
  one request at a time — in-process (``workers=0``) and over worker
  pools — and throughput, latency percentiles, and batch shapes are
  recorded.
* Served answers are checked **bit-identical** to the closed-loop
  baseline (indices, distances, and per-query stats) at every scale.

Results land in ``benchmarks/results/BENCH_serving.json`` (schema
``bench_serving/v1``) plus a human-readable text report.  Set
``REPRO_BENCH_SERVING_SCALE=smoke`` to run tiny corpora and skip the
machine-speed assertion (identity is still enforced) — that is what the
CI smoke job does.
"""

import json
import os
import tempfile

import numpy as np

import _experiments as exp
from repro.evaluation.reporting import format_table
from repro.search import (
    BruteForceIndex,
    IDistanceIndex,
    IGridIndex,
    KdTreeIndex,
    LshIndex,
    PyramidIndex,
    RTreeIndex,
    VAFileIndex,
)
from repro.serve import BatchPolicy, compare_serving

_SMOKE = os.environ.get("REPRO_BENCH_SERVING_SCALE", "").lower() == "smoke"
_K = 3
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_JSON_NAME = "BENCH_serving.json"

# Flush at 128 requests or 5 ms, whichever comes first.  The wide batch
# is what buys the vectorized speedup; the deadline bounds tail latency
# when traffic is sparse.
_POLICY_MAX_BATCH = 128
_POLICY_MAX_WAIT_MS = 5.0

if _SMOKE:
    _N, _D = 300, 8
    _HEADLINE_QUERIES = 60
    _SWEEP_QUERIES = 60
    _HEADLINE_WORKERS = [0, 1, 2]
    _SWEEP_WORKERS = [0, 1]
else:
    # The acceptance configuration: 10k x 16 brute force, 4 workers.
    _N, _D = 10_000, 16
    _HEADLINE_QUERIES = 2_000
    _SWEEP_QUERIES = 300
    _HEADLINE_WORKERS = [0, 1, 2, 4]
    _SWEEP_WORKERS = [0, 2]

# Brute force is the headline family (its query_batch is a single
# matmul, so micro-batching has the most to win); the remaining kinds
# run a narrower sweep that still exercises in-process and pooled
# serving for every query_batch implementation.
_FAMILIES = [
    ("bruteforce", lambda pts: BruteForceIndex(pts), _HEADLINE_WORKERS,
     _HEADLINE_QUERIES),
    ("kdtree", lambda pts: KdTreeIndex(pts), _SWEEP_WORKERS, _SWEEP_QUERIES),
    ("rtree", lambda pts: RTreeIndex(pts), _SWEEP_WORKERS, _SWEEP_QUERIES),
    ("vafile", lambda pts: VAFileIndex(pts), _SWEEP_WORKERS, _SWEEP_QUERIES),
    ("pyramid", lambda pts: PyramidIndex(pts), _SWEEP_WORKERS, _SWEEP_QUERIES),
    ("idistance", lambda pts: IDistanceIndex(pts, seed=0), _SWEEP_WORKERS,
     _SWEEP_QUERIES),
    ("igrid", lambda pts: IGridIndex(pts), _SWEEP_WORKERS, _SWEEP_QUERIES),
    ("lsh", lambda pts: LshIndex(pts, seed=0), _SWEEP_WORKERS, _SWEEP_QUERIES),
]


def _run():
    rng = np.random.default_rng(exp.SEED)
    corpus = rng.standard_normal((_N, _D))
    policy = BatchPolicy(
        max_batch=_POLICY_MAX_BATCH, max_wait_ms=_POLICY_MAX_WAIT_MS
    )
    rows = []
    with tempfile.TemporaryDirectory() as workdir:
        for name, build, worker_grid, n_queries in _FAMILIES:
            queries = rng.standard_normal((n_queries, _D))
            index = build(corpus)
            path = os.path.join(workdir, f"{name}.npz")
            index.save(path)
            for n_workers in worker_grid:
                comparison = compare_serving(
                    index, path, queries, _K,
                    n_workers=n_workers, policy=policy,
                )
                report = comparison.report
                rows.append(
                    {
                        "index": name,
                        "corpus_size": _N,
                        "dims": _D,
                        "n_queries": n_queries,
                        "k": _K,
                        "n_workers": n_workers,
                        "closed_loop_qps": comparison.closed_loop_qps,
                        "served_qps": comparison.served_qps,
                        "speedup": comparison.speedup,
                        "latency_p50_ms": report.latency_p50_ms,
                        "latency_p95_ms": report.latency_p95_ms,
                        "latency_p99_ms": report.latency_p99_ms,
                        "mean_batch_size": report.mean_batch_size,
                        "batch_size_histogram": {
                            str(size): count
                            for size, count in sorted(
                                report.batch_size_histogram.items()
                            )
                        },
                        "points_scanned": report.query_stats.points_scanned,
                        "identical": comparison.identical,
                    }
                )
    return rows


def _emit_json(rows):
    payload = {
        "schema": "bench_serving/v1",
        "config": {
            "scale": "smoke" if _SMOKE else "full",
            "corpus_size": _N,
            "dims": _D,
            "k": _K,
            "policy": {
                "max_batch": _POLICY_MAX_BATCH,
                "max_wait_ms": _POLICY_MAX_WAIT_MS,
            },
            "seed": exp.SEED,
        },
        "runs": rows,
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, _JSON_NAME), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_ablation_serving(benchmark, capsys):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    _emit_json(rows)

    table = format_table(
        [
            "index", "workers", "queries", "closed q/s", "served q/s",
            "speedup", "p50 ms", "p99 ms", "mean batch", "bit-identical",
        ],
        [
            (
                row["index"],
                "in-proc" if row["n_workers"] == 0 else row["n_workers"],
                row["n_queries"],
                f"{row['closed_loop_qps']:,.0f}",
                f"{row['served_qps']:,.0f}",
                f"{row['speedup']:.1f}x",
                f"{row['latency_p50_ms']:.2f}",
                f"{row['latency_p99_ms']:.2f}",
                f"{row['mean_batch_size']:.1f}",
                "yes" if row["identical"] else "NO",
            )
            for row in rows
        ],
        title=(
            "Micro-batched serving vs. closed-loop one-query-per-call "
            f"({_N:,} x {_D} corpus)"
        ),
    )
    if _SMOKE:
        table += "\nnote: smoke scale — throughput assertion skipped"
    exp.emit(table, "ablation_serving", capsys)

    # Identity is non-negotiable at every scale: a serving layer that
    # answers differently from sequential ``query`` is wrong, not fast.
    for row in rows:
        assert row["identical"], (
            f"{row['index']} served results diverged from the closed-loop "
            f"baseline at n_workers={row['n_workers']}"
        )
    if _SMOKE:
        return
    # The headline claim: micro-batching turns one-at-a-time brute-force
    # traffic into >= 5x the closed-loop throughput at the acceptance
    # configuration (10k x 16 corpus, 4 workers).
    headline = [
        row for row in rows
        if row["index"] == "bruteforce" and row["n_workers"] == 4
    ]
    assert headline, "bruteforce 4-worker configuration missing from sweep"
    assert headline[0]["speedup"] >= 5.0, (
        "micro-batched brute-force serving only "
        f"{headline[0]['speedup']:.1f}x the closed-loop baseline"
    )
