"""Ablation — approximate LSH vs. "reduce first, search exactly".

Hash approximately in full dimensionality (E2LSH), or follow the paper:
reduce aggressively onto the coherent directions and search exactly in
the small space.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_lsh(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-lsh", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\nexpected: both beat a full scan (476 points); the reduced-space "
        "route retrieves *better-labeled* neighbors because the discarded "
        "dimensions were noise — approximation cannot do that"
    )
    exp.emit(report, "ablation_lsh", capsys)

    lsh_row, reduced_row = result.data["rows"]
    assert lsh_row[1] < 476
    assert reduced_row[1] < 476
    assert reduced_row[2] >= lsh_row[2]
