"""Ablation — live mutation with zero-downtime snapshot swap.

:class:`repro.serve.mutation.MutableIndexServer` claims an LSM-style
memtable over immutable snapshot generations changes *when* the corpus
is rebuilt but never *what* is answered: every query during an
insert/delete stream — including queries in flight across a hot
generation swap — is bit-identical to an index freshly built over the
live rowset at that instant.  This bench drives seeded mutate-while-
serving traces through :func:`compare_mutable_serving` and asserts the
identity on **every** run:

* ``bruteforce`` and ``kdtree`` — the size-triggered compaction path
  (manual compactions every ``compact_every`` mutations, each run
  concurrently with in-flight queries over the swap).
* ``projscreen`` with a drift threshold — inserts drawn from a rotated
  distribution so the captured-energy monitor fires and the rebuild is
  drift-triggered, exercising re-reduction on the live rowset.

Results land in ``benchmarks/results/BENCH_mutation.json`` (schema
``bench_mutation/v1``) plus a human-readable report.  Set
``REPRO_BENCH_MUTATION_SCALE=smoke`` for the tiny CI configuration —
the identity assertions hold at every scale.
"""

import json
import os
import tempfile

import numpy as np

import _experiments as exp
from repro.evaluation.reporting import format_table
from repro.serve.bench import compare_mutable_serving

_SMOKE = (
    os.environ.get("REPRO_BENCH_MUTATION_SCALE", "").lower() == "smoke"
)
_K = 5
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_JSON_NAME = "BENCH_mutation.json"

if _SMOKE:
    _N, _D = 150, 8
    _N_QUERIES = 12
    _N_OPS = 90
    _COMPACT_EVERY = 30
    _SWAP_INFLIGHT = 6
else:
    _N, _D = 4_000, 16
    _N_QUERIES = 64
    _N_OPS = 600
    _COMPACT_EVERY = 120
    _SWAP_INFLIGHT = 16

# (kind, index kwargs, drift threshold, drift scale): two exact kinds on
# the size-triggered path, plus projscreen under distribution drift so
# the captured-energy monitor triggers the rebuild instead.
_CONFIGS = [
    ("bruteforce", {}, None, None),
    ("kdtree", {}, None, None),
    ("projscreen", {"subspace_dim": 4}, 0.85, 3.0),
]


def _run():
    rng = np.random.default_rng(exp.SEED)
    rows = []
    with tempfile.TemporaryDirectory() as workdir:
        for kind, kwargs, drift_threshold, drift_scale in _CONFIGS:
            # Anisotropic corpus: projscreen's frozen basis captures the
            # seeded energy well, so post-drift inserts measurably move
            # the covariance and the monitor has something to detect.
            scales = np.linspace(1.0, 0.05, _D)
            corpus = rng.standard_normal((_N, _D)) * scales
            queries = rng.standard_normal((_N_QUERIES, _D)) * scales
            comparison = compare_mutable_serving(
                os.path.join(workdir, kind),
                corpus,
                queries,
                _K,
                kind=kind,
                index_kwargs=kwargs,
                n_ops=_N_OPS,
                compact_every=_COMPACT_EVERY,
                drift_threshold=drift_threshold,
                drift_scale=drift_scale,
                swap_inflight_queries=_SWAP_INFLIGHT,
                seed=exp.SEED,
            )
            rows.append(
                {
                    "kind": comparison.index_kind,
                    "n_initial": comparison.n_initial,
                    "n_ops": comparison.n_ops,
                    "n_inserts": comparison.n_inserts,
                    "n_deletes": comparison.n_deletes,
                    "n_queries": comparison.n_queries,
                    "n_compactions": comparison.n_compactions,
                    "n_drift_compactions": comparison.n_drift_compactions,
                    "n_generations": comparison.n_generations,
                    "swap_inflight_queries": (
                        comparison.swap_inflight_queries
                    ),
                    "identical": comparison.identical,
                    "mutate_seconds": comparison.mutate_seconds,
                    "query_seconds": comparison.query_seconds,
                    "query_qps": comparison.query_qps,
                }
            )
    return rows


def _emit_json(rows):
    payload = {
        "schema": "bench_mutation/v1",
        "config": {
            "scale": "smoke" if _SMOKE else "full",
            "corpus_size": _N,
            "dims": _D,
            "n_queries": _N_QUERIES,
            "k": _K,
            "n_ops": _N_OPS,
            "compact_every": _COMPACT_EVERY,
            "swap_inflight_queries": _SWAP_INFLIGHT,
            "seed": exp.SEED,
        },
        "runs": rows,
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, _JSON_NAME), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_ablation_mutation(benchmark, capsys):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    _emit_json(rows)

    table = format_table(
        [
            "kind", "inserts", "deletes", "queries", "compactions",
            "drift", "generations", "swap q", "q/s", "bit-identical",
        ],
        [
            (
                row["kind"],
                row["n_inserts"],
                row["n_deletes"],
                row["n_queries"],
                row["n_compactions"],
                row["n_drift_compactions"],
                row["n_generations"],
                row["swap_inflight_queries"],
                f"{row['query_qps']:.0f}",
                "yes" if row["identical"] else "NO",
            )
            for row in rows
        ],
        title=(
            "Mutable serving vs fresh-rebuild reference "
            f"({_N:,} x {_D} corpus, {_N_OPS} mutations, k={_K})"
        ),
    )
    exp.emit(table, "ablation_mutation", capsys)

    # The invariant that holds in EVERY run at EVERY scale: a mutating
    # server never answers differently from a fresh rebuild over the
    # live rowset — not mid-stream, not across a hot swap.
    for row in rows:
        assert row["identical"], (
            f"kind={row['kind']} delivered answers that differ from a "
            "fresh rebuild over the live rowset"
        )
        assert row["n_compactions"] >= 1, (
            f"kind={row['kind']} never compacted; the swap path was "
            "not exercised"
        )
        assert row["swap_inflight_queries"] > 0
    drift_rows = [row for row in rows if row["kind"] == "projscreen"]
    assert drift_rows and all(
        row["n_drift_compactions"] >= 1 for row in drift_rows
    ), "projscreen run never triggered a drift compaction"
