"""Ablation — serving-stack robustness under injected faults.

The hardened serving layer (:mod:`repro.serve`) claims that degradation
is always *loud and typed*: under hung workers, crashes, overload, and
deadline expiry, every submitted future still resolves — with a result
or a typed :class:`ServingError` — and every answer that is delivered
stays bit-identical to sequential ``index.query``.  This bench replays
a deterministic fault matrix (:mod:`repro.serve.faults`) against a live
:class:`IndexServer` and records the degradation ledger per scenario:

* ``baseline`` — no faults, one worker (the control row).
* ``hung_worker`` — the first worker hangs on its first batch; the
  heartbeat must kill it and the clean replacement re-answer.
* ``crash_worker`` — the first worker dies hard mid-batch; restart plus
  resubmission must recover.
* ``injected_error`` — one batch raises; its requests must fail typed
  while the server keeps serving.
* ``overload_reject`` / ``overload_drop_oldest`` — a burst against a
  tiny admission bound under both shedding policies.
* ``deadline_expiry`` — request deadlines far shorter than the flush
  wait; every request must fail fast with ``DeadlineExceeded``.

Results land in ``benchmarks/results/BENCH_robustness.json`` (schema
``bench_robustness/v1``) plus a human-readable report.  Set
``REPRO_BENCH_ROBUSTNESS_SCALE=smoke`` for the tiny CI configuration —
the resolution and identity assertions hold at every scale.
"""

import json
import os
import tempfile

import numpy as np

import _experiments as exp
from repro.evaluation.reporting import format_table
from repro.search import BruteForceIndex
from repro.serve import (
    BatchPolicy,
    FaultPlan,
    FaultyLoader,
    IndexServer,
    ServerOverloaded,
    ServingError,
)
from repro.serve.bench import identical_results

_SMOKE = (
    os.environ.get("REPRO_BENCH_ROBUSTNESS_SCALE", "").lower() == "smoke"
)
_K = 3
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_JSON_NAME = "BENCH_robustness.json"
_RESOLVE_TIMEOUT = 60.0

if _SMOKE:
    _N, _D = 200, 6
    _N_QUERIES = 24
else:
    _N, _D = 2_000, 12
    _N_QUERIES = 64

_FAST = {"max_batch": 4, "max_wait_ms": 1.0}


def _scenarios(workdir):
    """The fault matrix: (name, server kwargs, submit deadline_ms)."""
    marker = lambda name: os.path.join(workdir, f"{name}.marker")  # noqa: E731
    fast = BatchPolicy(**_FAST)
    bounded = lambda shed: BatchPolicy(  # noqa: E731
        max_pending=4, shed_policy=shed, **_FAST
    )
    slow = FaultyLoader(FaultPlan(delay_all=0.05))
    return [
        ("baseline", dict(n_workers=1, policy=fast), None),
        (
            "hung_worker",
            dict(
                n_workers=1, policy=fast, heartbeat_timeout=0.25,
                index_loader=FaultyLoader(
                    FaultPlan(hang_on=(1,)), marker_path=marker("hang")
                ),
            ),
            None,
        ),
        (
            "crash_worker",
            dict(
                n_workers=1, policy=fast,
                index_loader=FaultyLoader(
                    FaultPlan(crash_on=(1,)), marker_path=marker("crash")
                ),
            ),
            None,
        ),
        (
            "injected_error",
            dict(
                n_workers=1, policy=fast,
                index_loader=FaultyLoader(FaultPlan(raise_on=(1,))),
            ),
            None,
        ),
        (
            "overload_reject",
            dict(n_workers=0, policy=bounded("reject-new"),
                 index_loader=slow),
            None,
        ),
        (
            "overload_drop_oldest",
            dict(n_workers=0, policy=bounded("drop-oldest"),
                 index_loader=slow),
            None,
        ),
        (
            "deadline_expiry",
            dict(
                n_workers=0,
                policy=BatchPolicy(max_batch=1_000, max_wait_ms=3_600_000.0),
            ),
            20.0,
        ),
    ]


def _run_scenario(name, snapshot, expected, queries, kwargs, deadline_ms):
    """Replay the stream against one faulted server; return the ledger row."""
    observed = []
    n_unresolved = 0
    with IndexServer(snapshot, **kwargs) as server:
        futures = []
        for query in queries:
            try:
                futures.append(
                    server.submit(query, k=_K, deadline_ms=deadline_ms)
                )
            except ServerOverloaded:
                futures.append(None)
        for future in futures:
            if future is None:
                observed.append(None)
                continue
            try:
                observed.append(future.result(timeout=_RESOLVE_TIMEOUT))
            except ServingError:
                observed.append(None)
            except TimeoutError:
                observed.append(None)
                n_unresolved += 1
        report = server.stats()
    return {
        "scenario": name,
        "n_submitted": len(queries),
        "n_ok": report.n_requests,
        "n_shed": report.n_shed,
        "n_deadline_exceeded": report.n_deadline_exceeded,
        "n_failed": report.n_failed,
        "n_unresolved": n_unresolved,
        "n_restarts": report.n_restarts,
        "n_hung_kills": report.n_hung_kills,
        "n_resubmitted": report.n_resubmitted,
        "all_resolved": n_unresolved == 0,
        "identical": identical_results(expected, observed),
    }


def _run():
    rng = np.random.default_rng(exp.SEED)
    corpus = rng.standard_normal((_N, _D))
    queries = rng.standard_normal((_N_QUERIES, _D))
    index = BruteForceIndex(corpus)
    expected = [index.query(query, k=_K) for query in queries]
    rows = []
    with tempfile.TemporaryDirectory() as workdir:
        snapshot = os.path.join(workdir, "bruteforce.npz")
        index.save(snapshot)
        for name, kwargs, deadline_ms in _scenarios(workdir):
            rows.append(
                _run_scenario(
                    name, snapshot, expected, queries, kwargs, deadline_ms
                )
            )
    return rows


def _emit_json(rows):
    payload = {
        "schema": "bench_robustness/v1",
        "config": {
            "scale": "smoke" if _SMOKE else "full",
            "corpus_size": _N,
            "dims": _D,
            "n_queries": _N_QUERIES,
            "k": _K,
            "seed": exp.SEED,
        },
        "scenarios": rows,
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, _JSON_NAME), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_ablation_robustness(benchmark, capsys):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    _emit_json(rows)

    table = format_table(
        [
            "scenario", "submitted", "ok", "shed", "deadline", "failed",
            "restarts", "hung kills", "resubmitted", "all resolved",
            "bit-identical",
        ],
        [
            (
                row["scenario"],
                row["n_submitted"],
                row["n_ok"],
                row["n_shed"],
                row["n_deadline_exceeded"],
                row["n_failed"],
                row["n_restarts"],
                row["n_hung_kills"],
                row["n_resubmitted"],
                "yes" if row["all_resolved"] else "NO",
                "yes" if row["identical"] else "NO",
            )
            for row in rows
        ],
        title=(
            "Serving robustness under injected faults "
            f"({_N:,} x {_D} corpus, {_N_QUERIES} queries/scenario)"
        ),
    )
    exp.emit(table, "ablation_robustness", capsys)

    by_name = {row["scenario"]: row for row in rows}
    # The two invariants that hold in EVERY scenario: no future is left
    # unresolved, and no delivered answer ever differs from sequential
    # query — degradation sheds or fails, it never approximates.
    for row in rows:
        assert row["all_resolved"], f"{row['scenario']} left futures hanging"
        assert row["identical"], f"{row['scenario']} delivered wrong answers"
        accounted = (
            row["n_ok"] + row["n_shed"] + row["n_deadline_exceeded"]
            + row["n_failed"]
        )
        assert accounted == row["n_submitted"], (
            f"{row['scenario']} ledger does not balance: "
            f"{accounted} != {row['n_submitted']}"
        )
    # Scenario-specific recovery evidence.
    assert by_name["baseline"]["n_ok"] == _N_QUERIES
    assert by_name["hung_worker"]["n_hung_kills"] >= 1
    assert by_name["hung_worker"]["n_ok"] == _N_QUERIES
    assert by_name["crash_worker"]["n_restarts"] >= 1
    assert by_name["crash_worker"]["n_ok"] == _N_QUERIES
    assert by_name["injected_error"]["n_failed"] >= 1
    assert by_name["overload_reject"]["n_shed"] > 0
    assert by_name["overload_drop_oldest"]["n_shed"] > 0
    assert by_name["deadline_expiry"]["n_deadline_exceeded"] == _N_QUERIES
