"""Ablation — dynamic reduction under distribution drift (ref [17]).

Stream a concept dataset, switch the generator mid-stream, and compare a
static frozen reducer against the drift-monitored dynamic reducer on the
post-drift data.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_dynamic(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-dynamic", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\nexpected: exactly one initial fit while stationary; the drift "
        "triggers refits and restores quality the frozen basis loses"
    )
    exp.emit(report, "ablation_dynamic", capsys)

    assert result.data["refits_before_drift"] == 1
    assert result.data["refits_total"] > result.data["refits_before_drift"]
    assert result.data["dynamic"] > result.data["static"] + 0.1
