"""Ablation — write-ahead-log durability: fsync cost and replay speed.

The WAL (:mod:`repro.serve.wal`) prices durability with one knob:
``wal_sync="always"`` fsyncs every acknowledged op, ``"group"``
amortizes the fsync over a batch, ``"off"`` leaves flushing to the OS.
This bench measures the two costs of that knob:

* **mutation throughput vs sync policy** — the same seeded insert/
  delete stream against a :class:`MutableIndexServer` under each
  policy, reported as ops/second plus the fsync count actually paid;
* **replay time vs log length** — servers shut down with progressively
  longer un-compacted logs, then resumed; the resume wall-clock prices
  recovery, and every resumed server's answers are asserted
  bit-identical to the pre-shutdown server (the replay-identity
  guarantee, checked on every run at every scale).

Results land in ``benchmarks/results/BENCH_wal.json`` (schema
``bench_wal/v1``) plus a human-readable report.  Set
``REPRO_BENCH_WAL_SCALE=smoke`` for the tiny CI configuration.
"""

import json
import os
import tempfile
import time

import numpy as np

import _experiments as exp
from repro.evaluation.reporting import format_table
from repro.serve.mutation import MutableIndexServer
from repro.serve.wal import SYNC_POLICIES

_SMOKE = os.environ.get("REPRO_BENCH_WAL_SCALE", "").lower() == "smoke"
_K = 3
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_JSON_NAME = "BENCH_wal.json"

if _SMOKE:
    _N, _D = 120, 8
    _N_PROBES = 6
    _THROUGHPUT_OPS = 150
    _REPLAY_LENGTHS = [40, 120]
else:
    _N, _D = 2_000, 16
    _N_PROBES = 24
    _THROUGHPUT_OPS = 2_000
    _REPLAY_LENGTHS = [250, 1_000, 4_000]


def _drive(server, rng, n_ops):
    """A seeded insert-heavy stream; returns live ids for reuse."""
    live = list(range(server.n_live))
    for _ in range(n_ops):
        if rng.random() < 0.7 or len(live) <= _K + 1:
            live.append(server.insert(rng.standard_normal(_D)))
        else:
            server.delete(live.pop(int(rng.integers(len(live)))))
    return live


def _answers(server, probes):
    return [
        tuple(
            (n.index, n.distance)
            for n in server.query(probe, _K).neighbors
        )
        for probe in probes
    ]


def _run():
    rng = np.random.default_rng(exp.SEED)
    corpus = rng.standard_normal((_N, _D))
    probes = rng.standard_normal((_N_PROBES, _D))
    throughput = []
    replay = []
    with tempfile.TemporaryDirectory() as workdir:
        for policy in SYNC_POLICIES:
            root = os.path.join(workdir, f"tp-{policy}")
            with MutableIndexServer(
                root, corpus, kind="bruteforce", wal_sync=policy
            ) as server:
                stream = np.random.default_rng(exp.SEED + 1)
                started = time.perf_counter()
                _drive(server, stream, _THROUGHPUT_OPS)
                seconds = time.perf_counter() - started
                throughput.append(
                    {
                        "sync_policy": policy,
                        "n_ops": _THROUGHPUT_OPS,
                        "seconds": seconds,
                        "ops_per_second": (
                            _THROUGHPUT_OPS / seconds if seconds else 0.0
                        ),
                        "wal_appends": server.wal_appends,
                        "wal_syncs": server.wal_syncs,
                    }
                )
        for length in _REPLAY_LENGTHS:
            root = os.path.join(workdir, f"replay-{length}")
            with MutableIndexServer(
                root, corpus, kind="bruteforce", wal_sync="off"
            ) as server:
                stream = np.random.default_rng(exp.SEED + 2)
                _drive(server, stream, length)
                want = _answers(server, probes)
                n_live = server.n_live
            started = time.perf_counter()
            resumed = MutableIndexServer(root, kind="bruteforce")
            replay_seconds = time.perf_counter() - started
            with resumed:
                identical = (
                    resumed.n_live == n_live
                    and _answers(resumed, probes) == want
                )
            replay.append(
                {
                    "log_ops": length,
                    "replay_seconds": replay_seconds,
                    "ops_per_second": (
                        length / replay_seconds if replay_seconds else 0.0
                    ),
                    "identical": identical,
                }
            )
    return {"throughput": throughput, "replay": replay}


def _emit_json(results):
    payload = {
        "schema": "bench_wal/v1",
        "config": {
            "scale": "smoke" if _SMOKE else "full",
            "corpus_size": _N,
            "dims": _D,
            "n_probes": _N_PROBES,
            "k": _K,
            "throughput_ops": _THROUGHPUT_OPS,
            "replay_lengths": _REPLAY_LENGTHS,
            "seed": exp.SEED,
        },
        "throughput": results["throughput"],
        "replay": results["replay"],
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, _JSON_NAME), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_ablation_wal(benchmark, capsys):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    _emit_json(results)

    throughput_table = format_table(
        ["sync policy", "ops", "seconds", "ops/s", "fsyncs"],
        [
            (
                row["sync_policy"],
                row["n_ops"],
                f"{row['seconds']:.3f}",
                f"{row['ops_per_second']:.0f}",
                row["wal_syncs"],
            )
            for row in results["throughput"]
        ],
        title=(
            "Mutation throughput vs WAL sync policy "
            f"({_N:,} x {_D} corpus, {_THROUGHPUT_OPS} ops)"
        ),
    )
    replay_table = format_table(
        ["log ops", "replay s", "ops/s", "bit-identical"],
        [
            (
                row["log_ops"],
                f"{row['replay_seconds']:.3f}",
                f"{row['ops_per_second']:.0f}",
                "yes" if row["identical"] else "NO",
            )
            for row in results["replay"]
        ],
        title="Resume (replay) time vs log length",
    )
    exp.emit(
        throughput_table + "\n\n" + replay_table, "ablation_wal", capsys
    )

    # Invariants that hold on EVERY run at EVERY scale.
    policies = [row["sync_policy"] for row in results["throughput"]]
    assert sorted(policies) == sorted(SYNC_POLICIES)
    for row in results["throughput"]:
        assert row["ops_per_second"] > 0
        assert row["wal_appends"] == row["n_ops"]
    always = next(
        r for r in results["throughput"] if r["sync_policy"] == "always"
    )
    off = next(
        r for r in results["throughput"] if r["sync_policy"] == "off"
    )
    # "always" pays at least one fsync per op; "off" pays none on the
    # append path (only the clean close syncs).
    assert always["wal_syncs"] >= always["n_ops"]
    assert off["wal_syncs"] <= 1
    assert results["replay"], "no replay runs recorded"
    for row in results["replay"]:
        assert row["identical"], (
            f"resume after {row['log_ops']} logged ops answered "
            "differently from the pre-shutdown server"
        )
