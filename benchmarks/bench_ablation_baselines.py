"""Ablation — the full baseline family at matched component budgets.

Coherence-ordered PCA vs eigenvalue-ordered PCA vs truncated SVD vs
Gaussian random projection, on the clean ionosphere and on noisy A.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_baselines(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-baselines", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\nexpected: orderings tie on clean data; on noisy data only the "
        "coherence ordering avoids the planted noise; random projection "
        "tracks (noisy) full-dimensional quality"
    )
    exp.emit(report, "ablation_baselines", capsys)

    clean, noisy = result.data["rows"]
    assert abs(clean[2] - clean[3]) < 0.06
    assert noisy[2] > noisy[3] + 0.15
    assert noisy[2] > noisy[4] + 0.15
    assert noisy[2] > noisy[5] + 0.15
