"""Figure 9 — eigenvalue magnitude vs. coherence probability (Arrhythmia).

The paper: the top ~10 eigenvectors are separated from the rest in both
magnitude and coherence probability.
"""

import numpy as np

import _experiments as exp
from repro.experiments import run_experiment


def test_fig09_arrhythmia_scatter(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig09", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: top ~10 eigenvectors separated from the rest"
    )
    exp.emit(report, "fig09_arrhythmia_scatter", capsys)

    cp = result.data["analysis"].coherence_probabilities
    assert cp[:10].min() > np.median(cp[10:])
