"""Figure 4 — coherence probability per eigenvector, raw vs scaled (Musk).

The paper plots the coherence probability of each eigenvector (in
increasing order of eigenvalue) and shows that studentizing the data
raises the coherence levels.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_fig04_musk_scaling(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig04", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: scaling significantly increases the coherence probability"
    )
    exp.emit(report, "fig04_musk_scaling", capsys)

    assert result.data["lift"] > 0.0
