"""Ablation — sensitivity of the feature-stripping protocol to k.

The paper fixes k = 3 without comment; the qualitative conclusions must
not be artifacts of that choice.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_k_sensitivity(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-k", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\nexpected: every row repeats the paper's conclusions — the "
        "optimum beats full dimensionality and the coherence ordering "
        "beats the eigenvalue ordering on noisy data"
    )
    exp.emit(report, "ablation_k_sensitivity", capsys)

    for k, opt_dims, opt_acc, full_acc, coherent, classical in result.data["rows"]:
        assert opt_acc >= full_acc
        assert opt_dims <= 17
        assert coherent > classical + 0.05
