"""Section 3, Equations 4-5 — coherence of uniformly distributed data.

The paper derives in closed form that for uniform data the coherence
factor of every axis eigenvector is exactly 1 and the dataset coherence
probability is 2*Phi(1) - 1 ~= 0.6827, independent of dimensionality —
meaning no direction qualifies as a concept and none can be discarded.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_sec3_uniform_coherence(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("sec3", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: exactly 2*Phi(1)-1 = 0.6827 for every vector at "
        "every dimensionality; the dataset admits no reduction"
    )
    exp.emit(report, "sec3_uniform_coherence", capsys)

    predicted = result.data["predicted"]
    for _, measured in result.data["measurements"]:
        assert abs(measured["mean_probability"] - predicted) < 1e-10
        assert measured["probability_spread"] < 1e-10
