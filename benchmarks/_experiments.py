"""Shared plumbing for the benchmark harness.

The experiment computations themselves live in :mod:`repro.experiments`
(the figure/table benches call :func:`repro.experiments.run_experiment`
directly); this module supplies what only the harness needs — the common
seed, cached access to the evaluation datasets for the ablation benches,
report emission to both the terminal and ``benchmarks/results/``, and a
grid-thinning helper for readable text series.
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.data import coherence, dataset, pca, sweep, table1_row

SEED = 0

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = [
    "SEED",
    "coherence_analysis",
    "dataset",
    "emit",
    "pca",
    "subsample_grid",
    "sweep",
    "table1_row",
]


def coherence_analysis(name: str, scale: bool):
    """Cached coherence analysis (library cache, seed = SEED)."""
    return coherence(name, scale, SEED)


def subsample_grid(dims: np.ndarray, max_points: int = 24) -> np.ndarray:
    """Thin a dense dimensionality grid for readable text reports."""
    if dims.size <= max_points:
        return dims
    picks = np.unique(
        np.round(np.linspace(0, dims.size - 1, max_points)).astype(int)
    )
    return dims[picks]


def emit(report: str, name: str, capsys) -> None:
    """Print a report to the real terminal and persist it to results/."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(report + "\n")
    if capsys is None:
        print(report)
        return
    with capsys.disabled():
        print()
        print(report)
