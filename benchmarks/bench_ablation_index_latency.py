"""Ablation — wall-clock query cost across the index family.

The pruning-fraction bench counts logical work; this one times actual
queries for every index in the library, on the musk-like data at full
dimensionality and after coherence reduction.  All per-index timings run
through the batch engine (``query_batch``), which is how a real workload
would issue them; a dedicated section times the vectorized brute-force
batch path against the one-query-at-a-time loop on a 1,000-query ×
10,000-point corpus and reports the speedup.

The speedup assertion (>= 10x) is the only timing assertion — it checks
an algorithmic property (BLAS matmul vs. Python loop), not a
machine-speed constant.  Everything else asserts result consistency.
"""

import time

import numpy as np

import _experiments as exp
from repro.core.reducer import CoherenceReducer
from repro.evaluation.reporting import format_table
from repro.search.bruteforce import BruteForceIndex
from repro.search.idistance import IDistanceIndex
from repro.search.kdtree import KdTreeIndex
from repro.search.pyramid import PyramidIndex
from repro.search.rtree import RTreeIndex
from repro.search.vafile import VAFileIndex

_FAMILIES = [
    ("brute force", BruteForceIndex),
    ("kd-tree", KdTreeIndex),
    ("R-tree", RTreeIndex),
    ("VA-file", VAFileIndex),
    ("pyramid", PyramidIndex),
    ("iDistance", IDistanceIndex),
]

# Batch-vs-loop showcase: large enough that the BLAS path's fixed costs
# amortize, small enough to keep the bench under a few seconds.
_SPEEDUP_QUERIES = 1_000
_SPEEDUP_POINTS = 10_000
_SPEEDUP_DIMS = 16


def _time_batch(index, queries, k=3):
    start = time.perf_counter()
    batch = index.query_batch(queries, k=k)
    elapsed = time.perf_counter() - start
    return elapsed / len(queries) * 1e6, batch  # microseconds per query


def _run():
    data = exp.dataset("musk")
    rng = np.random.default_rng(exp.SEED)
    query_rows = rng.choice(data.n_samples, size=30, replace=False)

    representations = {
        "full 166d": exp.pca("musk", True).transform(data.features),
        "reduced 13d": CoherenceReducer(
            n_components=13, ordering="coherence", scale=True
        ).fit_transform(data.features),
    }

    rows = []
    consistency = {}
    for rep_name, features in representations.items():
        queries = features[query_rows]
        reference = None
        for index_name, cls in _FAMILIES:
            index = cls(features)
            per_query_us, batch = _time_batch(index, queries)
            indices = [tuple(r.indices.tolist()) for r in batch]
            if reference is None:
                reference = indices
            consistency[(rep_name, index_name)] = indices == reference
            rows.append((rep_name, index_name, per_query_us))
    return rows, consistency


def _run_speedup():
    """Brute-force batch engine vs. query-at-a-time loop, same answers."""
    rng = np.random.default_rng(exp.SEED)
    corpus = rng.standard_normal((_SPEEDUP_POINTS, _SPEEDUP_DIMS))
    queries = rng.standard_normal((_SPEEDUP_QUERIES, _SPEEDUP_DIMS))
    index = BruteForceIndex(corpus)

    start = time.perf_counter()
    looped = [index.query(q, k=3) for q in queries]
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = index.query_batch(queries, k=3)
    batch_seconds = time.perf_counter() - start

    identical = all(
        tuple(a.indices.tolist()) == tuple(b.indices.tolist())
        and tuple(a.distances.tolist()) == tuple(b.distances.tolist())
        for a, b in zip(looped, batch)
    )
    return loop_seconds, batch_seconds, identical


def test_ablation_index_latency(benchmark, capsys):
    rows, consistency = benchmark.pedantic(_run, rounds=1, iterations=1)
    loop_seconds, batch_seconds, identical = _run_speedup()
    speedup = loop_seconds / batch_seconds

    report = format_table(
        ["representation", "index", "microseconds / 3-NN query (batched)"],
        rows,
        title="Query latency across the exact-index family (musk-like, 476 points)",
    )
    report += (
        "\n\nbrute-force batch engine, "
        f"{_SPEEDUP_QUERIES:,} queries x {_SPEEDUP_POINTS:,} points "
        f"(d={_SPEEDUP_DIMS}, k=3):\n"
        f"  looped query():  {loop_seconds:8.3f} s\n"
        f"  query_batch():   {batch_seconds:8.3f} s\n"
        f"  speedup:         {speedup:8.1f}x  "
        f"(results bit-identical: {'yes' if identical else 'NO'})"
    )
    report += (
        "\nnote: wall-clock numbers are machine-dependent; the structural "
        "comparison lives in bench_ablation_index_pruning"
    )
    exp.emit(report, "ablation_index_latency", capsys)

    # Every exact index returns the brute-force answer in both spaces.
    for key, agrees in consistency.items():
        assert agrees, f"{key} diverged from brute force"
    assert identical, "batch results diverged from looped query()"
    assert speedup >= 10.0, (
        f"batch engine only {speedup:.1f}x faster than the loop"
    )
