"""Ablation — wall-clock query cost across the index family.

The pruning-fraction bench counts logical work; this one times actual
queries for every index in the library, on the musk-like data at full
dimensionality and after coherence reduction.  pytest-benchmark's table
carries the headline timing; the report records per-index microseconds
per query so the speedup of "reduce, then index" is visible next to the
structural statistics.

No timing assertions (wall-clock is machine-dependent); the assertions
check only result-consistency across indexes.
"""

import time

import numpy as np

import _experiments as exp
from repro.core.reducer import CoherenceReducer
from repro.evaluation.reporting import format_table
from repro.search.bruteforce import BruteForceIndex
from repro.search.idistance import IDistanceIndex
from repro.search.kdtree import KdTreeIndex
from repro.search.pyramid import PyramidIndex
from repro.search.rtree import RTreeIndex
from repro.search.vafile import VAFileIndex

_FAMILIES = [
    ("brute force", BruteForceIndex),
    ("kd-tree", KdTreeIndex),
    ("R-tree", RTreeIndex),
    ("VA-file", VAFileIndex),
    ("pyramid", PyramidIndex),
    ("iDistance", IDistanceIndex),
]


def _time_queries(index, queries, k=3):
    start = time.perf_counter()
    results = [index.query(q, k=k) for q in queries]
    elapsed = time.perf_counter() - start
    return elapsed / len(queries) * 1e6, results  # microseconds per query


def _run():
    data = exp.dataset("musk")
    rng = np.random.default_rng(exp.SEED)
    query_rows = rng.choice(data.n_samples, size=30, replace=False)

    representations = {
        "full 166d": exp.pca("musk", True).transform(data.features),
        "reduced 13d": CoherenceReducer(
            n_components=13, ordering="coherence", scale=True
        ).fit_transform(data.features),
    }

    rows = []
    consistency = {}
    for rep_name, features in representations.items():
        queries = features[query_rows]
        reference = None
        for index_name, cls in _FAMILIES:
            index = cls(features)
            per_query_us, results = _time_queries(index, queries)
            indices = [tuple(r.indices.tolist()) for r in results]
            if reference is None:
                reference = indices
            consistency[(rep_name, index_name)] = indices == reference
            rows.append((rep_name, index_name, per_query_us))
    return rows, consistency


def test_ablation_index_latency(benchmark, capsys):
    rows, consistency = benchmark.pedantic(_run, rounds=1, iterations=1)
    report = format_table(
        ["representation", "index", "microseconds / 3-NN query"],
        rows,
        title="Query latency across the exact-index family (musk-like, 476 points)",
    )
    report += (
        "\nnote: wall-clock numbers are machine-dependent; the structural "
        "comparison lives in bench_ablation_index_pruning"
    )
    exp.emit(report, "ablation_index_latency", capsys)

    # Every exact index returns the brute-force answer in both spaces.
    for key, agrees in consistency.items():
        assert agrees, f"{key} diverged from brute force"
