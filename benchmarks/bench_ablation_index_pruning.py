"""Ablation — index pruning effectiveness vs dimensionality.

Section 1.1: "the optimistic bounds used by most index structures are
usually not sharp enough for any kind of effective pruning" in high
dimensionality — which is exactly why aggressive reduction makes index
structures practical again.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_index_pruning(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-index-pruning", seed=exp.SEED),
        rounds=1, iterations=1,
    )
    report = result.report + (
        "\npaper shape: pruning collapses as dimensionality grows; "
        "aggressive reduction restores it"
    )
    exp.emit(report, "ablation_index_pruning", capsys)

    uniform_rows = result.data["uniform_rows"]
    musk_rows = result.data["musk_rows"]
    kd_low, kd_high = uniform_rows[0][1], uniform_rows[-1][1]
    assert kd_low > 0.7
    assert kd_high < 0.2
    for column in range(1, 4):
        assert musk_rows[1][column] > musk_rows[0][column]
