"""Ablation — how much the Section 2.2 scaling fix matters, by scale spread.

Sweeps the per-dimension scale heterogeneity of a latent-concept dataset
and compares covariance PCA (raw) against correlation PCA (studentized)
on both coherence and search quality.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_scaling(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-scaling", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape (Section 2.2): with a common scale the choice is "
        "immaterial; heterogeneous scales depress raw coherence and "
        "quality while the studentized pipeline is unaffected"
    )
    exp.emit(report, "ablation_scaling", capsys)

    rows = result.data["rows"]
    no_spread, big_spread = rows[0], rows[-1]
    assert abs(no_spread[3] - no_spread[4]) < 0.05
    assert big_spread[4] > big_spread[3] + 0.02
    raw_accs = [row[3] for row in rows]
    raw_cps = [row[1] for row in rows]
    assert all(a >= b for a, b in zip(raw_accs, raw_accs[1:]))
    assert all(a >= b for a, b in zip(raw_cps, raw_cps[1:]))
    scaled_accs = [row[4] for row in rows]
    assert max(scaled_accs) - min(scaled_accs) < 0.05
