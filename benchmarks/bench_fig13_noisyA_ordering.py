"""Figure 13 — eigenvalue vs coherence-probability ordering (Noisy A).

The paper: the coherence-ordered accuracy curve completely dominates the
eigenvalue-ordered one; the eigenvalue curve never peaks (all dimensions
are needed to reach its best), while the coherence curve peaks at ~5 of
34 dimensions — and the reduced data keeps only ~12% of the variance.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_fig13_noisyA_ordering(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig13", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: coherence curve dominates and peaks at ~5 dims; "
        "eigenvalue curve never peaks; variance kept ~12%"
    )
    exp.emit(report, "fig13_noisyA_ordering", capsys)

    c_dims, c_best = result.data["coherent_optimum"]
    _, e_best = result.data["classical_optimum"]
    classical = result.data["classical"]
    assert c_best > e_best + 0.1
    assert c_dims <= 10
    assert e_best <= classical.full_dimensional_accuracy + 0.03
    assert result.data["variance_kept_at_optimum"] < 0.15
