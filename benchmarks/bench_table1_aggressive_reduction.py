"""Table 1 — advantages of aggressive dimensionality reduction.

For musk / ionosphere / arrhythmia: full-dimensional accuracy, the
optimal accuracy and its dimensionality, and the 1%-thresholding
baseline's accuracy and dimensionality.  The paper's shape:

* optimal accuracy > threshold accuracy ~ full-dimensional accuracy;
* optimal dimensionality << threshold dimensionality ~ full;
* the optimum discards a large share of the variance and most of the
  original nearest neighbors.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_table1_aggressive_reduction(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("table1", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: optimal acc > 1%-thr acc ~= full acc; optimal dims "
        "far below 1%-thr dims (which sit near full dimensionality)"
    )
    exp.emit(report, "table1_aggressive_reduction", capsys)

    for s in result.data["summaries"]:
        assert s.optimal_accuracy > s.full_accuracy
        assert s.optimal_accuracy > s.threshold_accuracy
        assert s.optimal_dimensionality <= s.threshold_dimensionality / 2
        assert abs(s.threshold_accuracy - s.full_accuracy) < 0.05
