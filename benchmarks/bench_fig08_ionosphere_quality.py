"""Figure 8 — quality of similarity search vs dimensions (Ionosphere).

The paper: the optimum arrives once the second cluster of eigenvalues is
included (~10 of 34); the scaling effect is absent at full dimensionality
but the scaled representation wins in the reduced space.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_fig08_ionosphere_quality(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig08", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: optimum near 10 of 34; scaled wins in reduced space"
    )
    exp.emit(report, "fig08_ionosphere_quality", capsys)

    s_dims, s_best = result.data["scaled_optimum"]
    _, u_best = result.data["raw_optimum"]
    assert s_best > result.data["scaled"].full_dimensional_accuracy
    assert 5 <= s_dims <= 14
    assert s_best > u_best
