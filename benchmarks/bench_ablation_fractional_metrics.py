"""Ablation — fractional distance metrics vs dimensionality (ref [1]).

Smaller Minkowski exponents degrade more slowly under the
dimensionality curse; all exponents collapse as d grows, L_inf fastest.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_fractional_metrics(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-fractional", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper-family shape (ICDT 2001, ref [1]): at every "
        "dimensionality, smaller p keeps more contrast; all exponents "
        "collapse as d grows, L_inf fastest"
    )
    exp.emit(report, "ablation_fractional_metrics", capsys)

    rows = result.data["rows"]
    for row in rows:
        d, frac, manhattan, euclidean, chebyshev = row
        if d >= 10:
            assert frac > manhattan > euclidean > chebyshev
    for column in range(1, 5):
        assert rows[0][column] > rows[-1][column]
