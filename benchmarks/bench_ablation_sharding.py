"""Ablation — scatter-gather sharding scaling curve with identity checks.

The sharded serving layer (:mod:`repro.shard`) claims that splitting a
corpus into S shard snapshots behind a :class:`ShardedIndexServer`
changes *where* the work runs but never *what* is answered: every merged
top-k is bit-identical to the unsharded index, including distance-tie
ordering.  This bench measures the 1 -> 8 shard scaling curve on one
corpus and asserts the identity on **every** run:

* ``shards=1`` — the coordinator degenerates to a single member server
  (the overhead-of-the-coordinator control row).
* ``shards=2,4,8`` (round-robin) — the scaling curve proper.
* ``shards=4`` (projected) — the same corpus partitioned by
  PROCLUS-style projected clusters instead of row interleaving, showing
  the identity is partition-independent.

Results land in ``benchmarks/results/BENCH_sharding.json`` (schema
``bench_sharding/v1``) plus a human-readable report.  Set
``REPRO_BENCH_SHARDING_SCALE=smoke`` for the tiny CI configuration —
the identity assertions hold at every scale.
"""

import json
import os
import tempfile

import numpy as np

import _experiments as exp
from repro.evaluation.reporting import format_table
from repro.search import BruteForceIndex
from repro.serve import BatchPolicy
from repro.shard import build_shards
from repro.shard.bench import compare_sharded_serving

_SMOKE = (
    os.environ.get("REPRO_BENCH_SHARDING_SCALE", "").lower() == "smoke"
)
_K = 10
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_JSON_NAME = "BENCH_sharding.json"

if _SMOKE:
    _N, _D = 600, 8
    _N_QUERIES = 40
else:
    _N, _D = 100_000, 16
    _N_QUERIES = 400

# (n_shards, method): the round-robin scaling curve plus one projected
# row demonstrating partition-independence of the merged answers.
_CONFIGS = [
    (1, "round-robin"),
    (2, "round-robin"),
    (4, "round-robin"),
    (8, "round-robin"),
    (4, "projected"),
]


def _run():
    rng = np.random.default_rng(exp.SEED)
    corpus = rng.standard_normal((_N, _D))
    queries = rng.standard_normal((_N_QUERIES, _D))
    index = BruteForceIndex(corpus)
    policy = BatchPolicy(max_batch=64, max_wait_ms=1.0)
    rows = []
    with tempfile.TemporaryDirectory() as workdir:
        for n_shards, method in _CONFIGS:
            manifest = build_shards(
                corpus,
                os.path.join(workdir, f"{method}-{n_shards}"),
                n_shards,
                kind="bruteforce",
                method=method,
                seed=exp.SEED,
            )
            comparison = compare_sharded_serving(
                index,
                manifest,
                queries,
                _K,
                n_workers=1,
                policy=policy,
            )
            report = comparison.report
            rows.append(
                {
                    "shards": n_shards,
                    "method": method,
                    "closed_loop_qps": comparison.closed_loop_qps,
                    "served_qps": comparison.served_qps,
                    "speedup": comparison.speedup,
                    "n_ok": report.n_requests,
                    "n_shed": report.n_shed,
                    "n_deadline_exceeded": report.n_deadline_exceeded,
                    "n_failed": report.n_failed,
                    "n_cancelled": report.n_cancelled,
                    "identical": comparison.identical,
                }
            )
    return rows


def _emit_json(rows):
    payload = {
        "schema": "bench_sharding/v1",
        "config": {
            "scale": "smoke" if _SMOKE else "full",
            "corpus_size": _N,
            "dims": _D,
            "n_queries": _N_QUERIES,
            "k": _K,
            "index": "bruteforce",
            "workers_per_shard": 1,
            "seed": exp.SEED,
        },
        "runs": rows,
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, _JSON_NAME), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_ablation_sharding(benchmark, capsys):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    _emit_json(rows)

    table = format_table(
        [
            "shards", "method", "closed-loop q/s", "served q/s", "speedup",
            "ok", "failed", "bit-identical",
        ],
        [
            (
                row["shards"],
                row["method"],
                f"{row['closed_loop_qps']:.0f}",
                f"{row['served_qps']:.0f}",
                f"{row['speedup']:.2f}x",
                row["n_ok"],
                row["n_failed"],
                "yes" if row["identical"] else "NO",
            )
            for row in rows
        ],
        title=(
            "Scatter-gather sharding vs the unsharded closed loop "
            f"({_N:,} x {_D} corpus, {_N_QUERIES} queries, k={_K})"
        ),
    )
    exp.emit(table, "ablation_sharding", capsys)

    # The invariant that holds in EVERY run at EVERY scale: a sharded
    # deployment never answers differently from the single big index.
    for row in rows:
        assert row["identical"], (
            f"shards={row['shards']} ({row['method']}) delivered answers "
            "that differ from the unsharded index"
        )
        assert row["n_ok"] == _N_QUERIES, (
            f"shards={row['shards']} ({row['method']}) answered "
            f"{row['n_ok']}/{_N_QUERIES}"
        )
    assert {row["shards"] for row in rows} == {1, 2, 4, 8}
    assert {row["method"] for row in rows} == {"round-robin", "projected"}
