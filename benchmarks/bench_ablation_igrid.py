"""Ablation — the IGrid alternative: change the metric, not the data.

Reference [3] caps every dimension's influence at one unit, so a few
huge-variance noise dimensions cannot swamp the signal the way they
swamp an L_p norm.  Noisy data set A is exactly that regime.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_igrid(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-igrid", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\nexpected: IGrid recovers much of what the noise dimensions "
        "steal from Euclidean search, without touching the data; the "
        "coherence reduction removes the noise outright and wins"
    )
    exp.emit(report, "ablation_igrid", capsys)

    euclidean_raw, igrid_raw, euclidean_reduced = (
        row[1] for row in result.data["rows"]
    )
    assert igrid_raw > euclidean_raw + 0.1
    assert euclidean_reduced > igrid_raw
