"""Ablation — nearest/farthest contrast collapse and its restoration.

Section 1.1 motivation: the relative contrast (D_max - D_min)/D_min of
uniform data collapses with dimensionality (Beyer et al.), making
proximity queries unstable; aggressive reduction onto the coherent
directions restores the contrast on structured data.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_contrast(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-contrast", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: contrast collapses with d; reduction restores it"
    )
    exp.emit(report, "ablation_contrast", capsys)

    contrasts = [c for _, c in result.data["profile"]]
    assert all(a > b for a, b in zip(contrasts, contrasts[1:]))
    assert result.data["musk_reduced"] > result.data["musk_full"]
