"""Ablation — query instability (Section 1.1) and its repair.

"A small relative perturbation of the target in a direction away from
the nearest neighbor could easily change the nearest neighbor into the
furthest neighbor and vice-versa."  Adversarial perturbations send the
old nearest neighbor toward the far end of the ranking as d grows; a
random direction is the benign control; reduction restores stability.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_stability(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-stability", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: the adversarial perturbation sends the old nearest "
        "neighbor toward the far end of the ranking as d grows (0.90 of "
        "the corpus at d=200); reduction restores stability"
    )
    exp.emit(report, "ablation_stability", capsys)

    uniform_rows = result.data["uniform_rows"]
    musk_rows = result.data["musk_rows"]
    away = [row[1] for row in uniform_rows]
    random_control = [row[2] for row in uniform_rows]
    assert all(a <= b + 1e-9 for a, b in zip(away, away[1:]))
    assert away[-1] > 0.5
    assert max(random_control) < 0.1
    assert musk_rows[1][1] < musk_rows[0][1]
