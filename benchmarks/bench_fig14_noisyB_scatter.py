"""Figure 14 — poor matching between coherence and eigenvalues (Noisy B).

Noisy data set B is the arrhythmia data with ~10 informative dimensions
replaced by amplitude-60 uniform noise.  As in Figure 12, the planted
noise owns the top of the unscaled eigenvalue spectrum with low coherence
probability, while the concepts sit just below it with high coherence.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_fig14_noisyB_scatter(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig14", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: an outlier cluster of ~10 very high eigenvalues "
        "with little information; concepts just below it"
    )
    exp.emit(report, "fig14_noisyB_scatter", capsys)

    cp = result.data["analysis"].coherence_probabilities
    n_noise = result.data["n_corrupted"]
    best = result.data["best_cp_indices"]
    assert cp[best].min() > cp[:n_noise].max()
    assert best.min() >= n_noise
