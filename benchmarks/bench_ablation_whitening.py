"""Ablation — whitening (the "distance function correction"), measured.

The paper observes that reduction "results in an automatic distance
function correction: the resulting distance function ... measures
distances in terms of the independent concepts".  Taken to its logical
end, one would also *whiten* — scale every concept to unit variance so
each contributes equally to distances.

The result is a useful negative: on the concept-structured datasets,
plain (eigenvalue-weighted) concept distances beat whitened ones by a
few points — the concepts' variance ratios carry discriminative
information, and equalizing them throws it away.  On the corrupted data
the two tie.  ``CoherenceReducer(whiten=True)`` is therefore opt-in.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_ablation_whitening(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-whitening", seed=exp.SEED),
        rounds=1, iterations=1,
    )
    report = result.report + (
        "\nfinding: eigenvalue weighting is informative on concept data "
        "(whitening costs a few points); the two tie on the corrupted "
        "set — whiten=True is correctly opt-in, not the default"
    )
    exp.emit(report, "ablation_whitening", capsys)

    rows = result.data["rows"]
    for name, _, plain, whitened, _ in rows:
        # Whitening is never catastrophic and never a large win here.
        assert whitened >= plain - 0.09
        assert whitened <= plain + 0.03
    # On the clean datasets, plain weighting wins or ties.
    for name, _, plain, whitened, _ in rows[:3]:
        assert plain >= whitened - 1e-9
