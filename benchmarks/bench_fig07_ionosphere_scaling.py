"""Figure 7 — coherence probability per eigenvector, raw vs scaled (Ionosphere)."""

import _experiments as exp
from repro.experiments import run_experiment


def test_fig07_ionosphere_scaling(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig07", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: scaling produces an axis system with higher coherence"
    )
    exp.emit(report, "fig07_ionosphere_scaling", capsys)

    assert result.data["lift"] > 0.0
