"""Ablation — the text/LSI setting the paper builds its intuition on.

Topic-prediction accuracy of raw TF-IDF neighbors vs LSI neighbors on a
synthetic corpus with planted synonymy and polysemy, plus the coherence
probabilities of the semantic directions.
"""

import numpy as np

import _experiments as exp
from repro.core.coherence import UNIFORM_BASELINE_CP
from repro.experiments import run_experiment


def test_ablation_text_lsi(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-text", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: a handful of semantic directions beats hundreds "
        "of raw terms; the semantic directions are exactly the coherent ones"
    )
    exp.emit(report, "ablation_text_lsi", capsys)

    rows = result.data["rows"]
    raw = rows[0][2]
    lsi_at_topic_count = dict((r[0], r[2]) for r in rows)["LSI (k=5)"]
    assert lsi_at_topic_count > raw + 0.03
    coherence = result.data["coherence"]
    assert np.sum(coherence > UNIFORM_BASELINE_CP + 0.05) >= 3
