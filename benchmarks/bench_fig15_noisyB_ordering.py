"""Figure 15 — eigenvalue vs coherence-probability ordering (Noisy B).

The paper: the eigenvalue-ordered curve "always loses information" —
straightforward reduction is detrimental because the top eigenvectors are
noise; the coherence-ordered curve provides much better quality and peaks
just before the outlier (noise) cluster would be included, at ~11 of the
original dimensions.
"""

import _experiments as exp
from repro.experiments import run_experiment


def test_fig15_noisyB_ordering(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: run_experiment("fig15", seed=exp.SEED), rounds=1, iterations=1
    )
    report = result.report + (
        "\npaper shape: coherence curve peaks at ~11 dims just before the "
        "outlier cluster; eigenvalue ordering always loses"
    )
    exp.emit(report, "fig15_noisyB_ordering", capsys)

    c_dims, c_best = result.data["coherent_optimum"]
    _, e_best = result.data["classical_optimum"]
    assert c_best > e_best + 0.2
    assert c_dims <= 15
    assert not result.data["retained_indices"] & set(
        range(result.data["n_corrupted"])
    )
