"""Ablation — time-to-first-query: vectorized construction + snapshot load.

Two claims drive the persistence layer, and this bench measures both:

1. **Construction is vectorized.**  The naive reference builders below
   replicate the pre-vectorization implementations (recursive
   object-node kd-tree with per-node masks, per-point/per-table dict
   fill for LSH) and are timed against the shipping builds.
2. **Loading beats rebuilding.**  For every index the bench times
   build → save → load and the first query on each side; the
   time-to-first-query ratio (build + query vs. load + query) is what a
   restarting serving process experiences.  Loaded indexes must answer
   ``query_batch`` bit-identically to the freshly built originals — the
   identity check runs at every scale.

Results land in ``benchmarks/results/BENCH_build_latency.json`` (schema
``bench_build_latency/v1``) plus a human-readable text report.  Set
``REPRO_BENCH_BUILD_SCALE=smoke`` to run tiny corpora and skip the
machine-speed assertions (identity is still enforced) — that is what the
CI smoke job does.
"""

import json
import os
import tempfile
import time
from collections import defaultdict

import numpy as np

import _experiments as exp
from repro.evaluation.reporting import format_table
from repro.search import (
    BruteForceIndex,
    IDistanceIndex,
    IGridIndex,
    KdTreeIndex,
    LshIndex,
    PyramidIndex,
    RTreeIndex,
    VAFileIndex,
)

_SMOKE = os.environ.get("REPRO_BENCH_BUILD_SCALE", "").lower() == "smoke"
_SIZES = [(200, 8), (500, 8)] if _SMOKE else [(5_000, 16), (20_000, 16)]
_K = 3
_N_QUERIES = 8
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_JSON_NAME = "BENCH_build_latency.json"

_FAMILIES = [
    ("bruteforce", BruteForceIndex, lambda pts: BruteForceIndex(pts)),
    ("kdtree", KdTreeIndex, lambda pts: KdTreeIndex(pts)),
    ("rtree", RTreeIndex, lambda pts: RTreeIndex(pts)),
    ("vafile", VAFileIndex, lambda pts: VAFileIndex(pts)),
    ("pyramid", PyramidIndex, lambda pts: PyramidIndex(pts)),
    ("idistance", IDistanceIndex, lambda pts: IDistanceIndex(pts, seed=0)),
    ("igrid", IGridIndex, lambda pts: IGridIndex(pts)),
    ("lsh", LshIndex, lambda pts: LshIndex(pts, seed=0)),
]


def _naive_kdtree_build(points, leaf_size=16):
    """The pre-vectorization kd-tree build: object nodes, per-node masks."""

    class Node:
        __slots__ = ("indices", "split_dim", "split_value", "left", "right")

    def build(indices):
        node = Node()
        if indices.size <= leaf_size:
            node.indices = indices
            return node
        subset = points[indices]
        spreads = subset.max(axis=0) - subset.min(axis=0)
        split_dim = int(np.argmax(spreads))
        if spreads[split_dim] == 0.0:
            node.indices = indices
            return node
        values = subset[:, split_dim]
        split_value = float(np.median(values))
        left_mask = values <= split_value
        if left_mask.all() or not left_mask.any():
            left_mask = values < split_value
            if not left_mask.any():
                node.indices = indices
                return node
        node.indices = None
        node.split_dim = split_dim
        node.split_value = split_value
        node.left = build(indices[left_mask])
        node.right = build(indices[~left_mask])
        return node

    return build(np.arange(points.shape[0], dtype=np.intp))


def _naive_lsh_fill(index):
    """The pre-vectorization LSH table fill: per-point dict appends."""
    tables = []
    for t in range(index.n_tables):
        projected = index._points @ index._projections[t].T
        quantized = np.floor(
            (projected + index._offsets[t]) / index.bucket_width
        ).astype(np.int64)
        keys = [tuple(row) for row in quantized]
        table = defaultdict(list)
        for i, key in enumerate(keys):
            table[key].append(i)
        tables.append(dict(table))
    return tables


def _timed(callable_):
    start = time.perf_counter()
    value = callable_()
    return time.perf_counter() - start, value


def _best_of(callable_, repeats=3):
    """Best-of-N wall time — the construction comparisons use this so a
    single scheduler hiccup cannot flip a speedup assertion."""
    return min(_timed(callable_)[0] for _ in range(repeats))


def _identical(built, loaded, queries, k):
    fresh = built.query_batch(queries, k=k)
    reloaded = loaded.query_batch(queries, k=k)
    return all(
        tuple(a.indices.tolist()) == tuple(b.indices.tolist())
        and tuple(a.distances.tolist()) == tuple(b.distances.tolist())
        and a.stats == b.stats
        for a, b in zip(fresh, reloaded)
    )


def _run():
    rng = np.random.default_rng(exp.SEED)
    per_index = []
    construction = []
    ttfq = []
    with tempfile.TemporaryDirectory() as workdir:
        for n, d in _SIZES:
            corpus = rng.standard_normal((n, d))
            queries = rng.standard_normal((_N_QUERIES, d))
            build_total = 0.0
            load_total = 0.0
            for name, cls, build in _FAMILIES:
                path = os.path.join(workdir, f"{name}-{n}.npz")
                build_seconds, index = _timed(lambda build=build: build(corpus))
                save_seconds, _ = _timed(lambda index=index: index.save(path))
                load_seconds, loaded = _timed(
                    lambda cls=cls: cls.load(path)
                )
                query_built_seconds, _ = _timed(
                    lambda index=index: index.query(queries[0], k=_K)
                )
                query_loaded_seconds, _ = _timed(
                    lambda loaded=loaded: loaded.query(queries[0], k=_K)
                )
                identical = _identical(index, loaded, queries, _K)
                ttfq_build = build_seconds + query_built_seconds
                ttfq_load = load_seconds + query_loaded_seconds
                build_total += ttfq_build
                load_total += ttfq_load
                per_index.append(
                    {
                        "corpus_size": n,
                        "dims": d,
                        "index": name,
                        "build_seconds": build_seconds,
                        "save_seconds": save_seconds,
                        "load_seconds": load_seconds,
                        "first_query_built_seconds": query_built_seconds,
                        "first_query_loaded_seconds": query_loaded_seconds,
                        "ttfq_build_seconds": ttfq_build,
                        "ttfq_load_seconds": ttfq_load,
                        "load_vs_build_speedup": ttfq_build / ttfq_load,
                        "identical": identical,
                    }
                )
            ttfq.append(
                {
                    "corpus_size": n,
                    "build_total_seconds": build_total,
                    "load_total_seconds": load_total,
                    "speedup": build_total / load_total,
                }
            )

            # Construction speedups against the pre-vectorization builds.
            naive_kd_seconds = _best_of(lambda: _naive_kdtree_build(corpus))
            vec_kd_seconds = _best_of(lambda: KdTreeIndex(corpus))
            construction.append(
                {
                    "corpus_size": n,
                    "index": "kdtree",
                    "naive_seconds": naive_kd_seconds,
                    "vectorized_seconds": vec_kd_seconds,
                    "speedup": naive_kd_seconds / vec_kd_seconds,
                }
            )
            lsh = LshIndex(corpus, seed=0)
            naive_lsh_seconds = _best_of(lambda: _naive_lsh_fill(lsh))
            vec_lsh_seconds = _best_of(lambda: LshIndex(corpus, seed=0))
            construction.append(
                {
                    "corpus_size": n,
                    "index": "lsh",
                    "naive_seconds": naive_lsh_seconds,
                    "vectorized_seconds": vec_lsh_seconds,
                    "speedup": naive_lsh_seconds / vec_lsh_seconds,
                }
            )
    return per_index, construction, ttfq


def _emit_json(per_index, construction, ttfq):
    payload = {
        "schema": "bench_build_latency/v1",
        "config": {
            "scale": "smoke" if _SMOKE else "full",
            "corpus_sizes": [list(size) for size in _SIZES],
            "k": _K,
            "n_queries": _N_QUERIES,
            "seed": exp.SEED,
        },
        "per_index": per_index,
        "construction_speedups": construction,
        "ttfq": ttfq,
        "ttfq_overall_speedup": sum(
            row["build_total_seconds"] for row in ttfq
        ) / sum(row["load_total_seconds"] for row in ttfq),
    }
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, _JSON_NAME), "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def test_ablation_build_latency(benchmark, capsys):
    per_index, construction, ttfq = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    _emit_json(per_index, construction, ttfq)

    rows = [
        (
            row["corpus_size"],
            row["index"],
            f"{row['build_seconds'] * 1e3:.2f}",
            f"{row['load_seconds'] * 1e3:.2f}",
            f"{row['load_vs_build_speedup']:.1f}x",
            "yes" if row["identical"] else "NO",
        )
        for row in per_index
    ]
    report = format_table(
        ["n", "index", "build ms", "load ms", "ttfq speedup", "bit-identical"],
        rows,
        title="Build vs. snapshot-load time-to-first-query, all eight indexes",
    )
    report += "\n\nconstruction vs. pre-vectorization builders:\n" + "\n".join(
        f"  {row['index']:>7} n={row['corpus_size']:>6,}: "
        f"naive {row['naive_seconds'] * 1e3:8.2f} ms  "
        f"vectorized {row['vectorized_seconds'] * 1e3:8.2f} ms  "
        f"({row['speedup']:.1f}x)"
        for row in construction
    )
    report += "\n\naggregate time-to-first-query across the family:\n" + "\n".join(
        f"  n={row['corpus_size']:>6,}: build {row['build_total_seconds']:.3f} s"
        f"  load {row['load_total_seconds']:.3f} s  ({row['speedup']:.1f}x)"
        for row in ttfq
    )
    if _SMOKE:
        report += "\nnote: smoke scale — timing assertions skipped"
    exp.emit(report, "ablation_build_latency", capsys)

    # Identity is non-negotiable at every scale: a snapshot that answers
    # differently from its origin is corrupt, not slow.
    for row in per_index:
        assert row["identical"], (
            f"{row['index']} (n={row['corpus_size']}) loaded snapshot "
            "diverged from the freshly built index"
        )
    if _SMOKE:
        return
    for row in construction:
        assert row["speedup"] >= 5.0, (
            f"{row['index']} vectorized build only {row['speedup']:.1f}x "
            f"faster than the naive builder at n={row['corpus_size']}"
        )
    # The headline persistence claim: across the whole family and every
    # corpus size, restoring from snapshots gets to the first answer
    # >= 10x sooner than rebuilding.  (Per-size ratios are recorded in
    # the JSON; the small-corpus ratio is diluted by the fixed per-query
    # cost that both sides pay, so the assertion is on the aggregate.)
    build_total = sum(row["build_total_seconds"] for row in ttfq)
    load_total = sum(row["load_total_seconds"] for row in ttfq)
    overall = build_total / load_total
    assert overall >= 10.0, (
        f"aggregate load-vs-build time-to-first-query only {overall:.1f}x"
    )
